//! Property-based tests of Algorithm 1's internal invariants on random
//! instances: optimality preservation, state consistency, and monotone
//! effects of the individual steps.
//!
//! Seeded-loop style (the workspace builds offline, without `proptest`):
//! each test replays deterministic random cases from
//! [`mc3_core::rng::StdRng`], printing the seed on failure.

use mc3_core::rng::prelude::*;
use mc3_core::{ClassifierUniverse, Instance, Weights};
use mc3_solver::preprocess::{preprocess, PreprocessOptions};
use mc3_solver::work::WorkState;

const CASES: u64 = 96;

fn rand_instance(rng: &mut StdRng) -> Instance {
    let nq = rng.gen_range(1..8usize);
    let queries: Vec<Vec<u32>> = (0..nq)
        .map(|_| {
            let len = rng.gen_range(1..4usize);
            (0..len).map(|_| rng.gen_range(0..8u32)).collect()
        })
        .collect();
    let wseed = rng.gen::<u64>();
    Instance::new(queries, Weights::seeded(wseed, 1, 25)).expect("valid instance")
}

#[test]
fn state_invariants_after_preprocessing() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let instance = rand_instance(&mut rng);
        let universe = ClassifierUniverse::build(&instance);
        let mut ws = WorkState::new(&instance, universe);
        preprocess(&mut ws, &PreprocessOptions::default()).expect("preprocess");

        // selected classifiers are never removed, always zero current weight
        for (i, &sel) in ws.selected.iter().enumerate() {
            if sel {
                assert!(
                    !ws.removed[i],
                    "classifier {i} selected AND removed, seed {seed}"
                );
                assert!(ws.weight[i].is_zero(), "seed {seed}");
                assert!(ws.eff[i].is_zero(), "seed {seed}");
            }
        }
        // dead queries are exactly the fully covered ones
        for q in 0..instance.num_queries() {
            assert_eq!(
                ws.alive[q],
                ws.need(q) != 0,
                "query {q} liveness, seed {seed}"
            );
        }
        // coverage masks only contain bits of selected classifiers
        for q in 0..instance.num_queries() {
            let local = ws.universe.query_local(q);
            let mut expected = 0u32;
            for mask in 1..local.table.len() as u32 {
                let id = local.table[mask as usize];
                if !id.is_none() && ws.selected[id.index()] {
                    expected |= mask;
                }
            }
            assert_eq!(
                ws.covered[q], expected,
                "query {q} covered mask, seed {seed}"
            );
        }
        // base cost equals the original weights of the selected classifiers
        let recomputed: u64 = ws
            .selected
            .iter()
            .enumerate()
            .filter(|&(_, &s)| s)
            .map(|(i, _)| ws.universe.weight(mc3_core::ClassifierId(i as u32)).raw())
            .sum();
        assert_eq!(ws.base_cost.raw(), recomputed, "base cost, seed {seed}");
    }
}

#[test]
fn removals_never_break_coverability() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let instance = rand_instance(&mut rng);
        // after preprocessing, every alive query still has a finite cover
        // among the available classifiers
        let universe = ClassifierUniverse::build(&instance);
        let mut ws = WorkState::new(&instance, universe);
        preprocess(&mut ws, &PreprocessOptions::default()).expect("preprocess");
        for q in ws.alive_query_indices() {
            let cover = mc3_solver::cover_dp::min_cover(&ws, q);
            assert!(
                cover.is_some(),
                "query {q} lost its finite cover, seed {seed}"
            );
        }
    }
}

#[test]
fn each_step_subset_preserves_the_optimum() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let instance = rand_instance(&mut rng);
        let reference =
            mc3_solver::exact::solve_exact_with(&instance, &PreprocessOptions::disabled())
                .expect("solvable");
        for opts in [
            PreprocessOptions {
                singletons_and_zero: true,
                decomposition: false,
                k2_singleton_pruning: false,
                max_passes: 0,
            },
            PreprocessOptions {
                singletons_and_zero: true,
                decomposition: true,
                k2_singleton_pruning: false,
                max_passes: 6,
            },
            PreprocessOptions::default(),
        ] {
            let sol = mc3_solver::exact::solve_exact_with(&instance, &opts).expect("solvable");
            sol.verify(&instance).expect("valid cover");
            assert_eq!(
                sol.cost(),
                reference.cost(),
                "options {opts:?} changed the optimum, seed {seed}"
            );
        }
    }
}

#[test]
fn preprocessing_is_idempotent() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let instance = rand_instance(&mut rng);
        let universe = ClassifierUniverse::build(&instance);
        let mut ws = WorkState::new(&instance, universe);
        let opts = PreprocessOptions::default();
        preprocess(&mut ws, &opts).expect("preprocess");
        let selected_before: Vec<bool> = ws.selected.clone();
        let removed_before: Vec<bool> = ws.removed.clone();
        let cost_before = ws.base_cost;
        preprocess(&mut ws, &opts).expect("preprocess");
        assert_eq!(ws.selected, selected_before, "seed {seed}");
        assert_eq!(ws.removed, removed_before, "seed {seed}");
        assert_eq!(ws.base_cost, cost_before, "seed {seed}");
    }
}
