//! Properties of the shared work-stealing executor
//! (`mc3_solver::executor`) as exercised through the full solve
//! pipeline:
//!
//! * **parallel ≡ sequential** — over a 200-instance seeded corpus of
//!   multi-component instances, `parallel(true)` on the shared executor
//!   selects exactly the classifiers of the sequential solve (the
//!   determinism contract: results never depend on scheduling order);
//! * **cache-aware scheduling is cost-transparent** — with a shared
//!   `SolveCache` (hot-first dispatch + intra-request dedup active),
//!   parallel re-solves reproduce the sequential cost with a verifying
//!   cover;
//! * **steal-heavy stress** — an instance with hundreds of tiny
//!   components drives the injector's batch-grab path; steals and tasks
//!   must be observable and, once warm, solving must not spawn threads.

use mc3_core::rng::prelude::*;
use mc3_core::{Instance, Weights};
use mc3_solver::{executor, Algorithm, Mc3Solver, SolveCache};
use std::sync::Arc;

const CASES: u64 = 200;

/// A seeded instance with several disjoint components: `comps`
/// components on disjoint 5-property ranges, a few queries each.
fn multi_component_instance(seed: u64, comps: u32, queries_per: usize) -> Instance {
    let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0x517C_C1B7).wrapping_add(3));
    let mut queries = Vec::new();
    for c in 0..comps {
        let base = c * 5;
        for _ in 0..queries_per {
            let len = rng.gen_range(1..=3usize);
            let mut q: Vec<u32> = (0..5u32).map(|p| base + p).collect();
            q.shuffle(&mut rng);
            q.truncate(len);
            q.sort_unstable();
            queries.push(q);
        }
    }
    Instance::new(queries, Weights::seeded(seed, 1, 25)).expect("valid instance")
}

#[test]
fn parallel_selects_the_sequential_classifiers_over_corpus() {
    for seed in 0..CASES {
        let comps = 2 + (seed % 5) as u32;
        let instance = multi_component_instance(seed, comps, 3);
        let seq = Mc3Solver::new().solve(&instance).expect("sequential");
        let par = Mc3Solver::new()
            .parallel(true)
            .solve(&instance)
            .expect("parallel");
        par.verify(&instance).expect("parallel cover");
        assert_eq!(
            seq.classifiers(),
            par.classifiers(),
            "seed {seed}: scheduling order changed the selected classifiers"
        );
        assert_eq!(seq.cost(), par.cost(), "seed {seed}");
    }
}

#[test]
fn cache_aware_scheduling_preserves_sequential_cost() {
    for seed in 0..40 {
        let instance = multi_component_instance(seed, 4, 3);
        let seq = Mc3Solver::new().solve(&instance).expect("sequential");

        let cache = Arc::new(SolveCache::with_capacity_mb(8));
        for round in 0..2 {
            // Round 0 is all-cold (largest-first ordering); round 1
            // dispatches every component down the hot path.
            let par = Mc3Solver::new()
                .parallel(true)
                .cache(Arc::clone(&cache))
                .solve(&instance)
                .expect("parallel cached");
            par.verify(&instance).expect("parallel cached cover");
            assert_eq!(
                seq.cost(),
                par.cost(),
                "seed {seed} round {round}: cache-aware scheduling drifted the cost"
            );
        }
        assert!(
            cache.stats().hits > 0,
            "seed {seed}: warm re-solve must take the hot path"
        );
    }
}

#[test]
fn steal_heavy_load_is_observable_and_spawns_no_threads_once_warm() {
    // Hundreds of tiny components → hundreds of cheap tasks per solve;
    // the injector hands them out in batches, so sibling workers must
    // steal from whichever worker grabbed a batch.
    let instance = multi_component_instance(99, 300, 2);
    // Preprocessing can cover queries before decomposition; disable it so
    // every component reliably reaches the executor as a task.
    let solve = || {
        let sol = Mc3Solver::new()
            .algorithm(Algorithm::General)
            .without_preprocessing()
            .parallel(true)
            .solve(&instance)
            .expect("parallel");
        sol.verify(&instance).expect("cover");
        sol
    };

    let tasks_before = executor::tasks_total();
    let warm = solve();
    assert!(
        executor::tasks_total() >= tasks_before + 300,
        "each component must run as an executor task"
    );
    assert!(executor::pool_threads() >= 1);

    // Steady state: repeated solves reuse the same workers. Steals are
    // scheduling-dependent, so stress many rounds before asserting.
    let spawns_warm = executor::thread_spawns_total();
    let steals_before = executor::steals_total();
    for _ in 0..10 {
        let again = solve();
        assert_eq!(warm.cost(), again.cost(), "steady-state cost drifted");
    }
    assert_eq!(
        executor::thread_spawns_total(),
        spawns_warm,
        "a warm executor must not spawn threads per solve"
    );
    if executor::effective_threads() > 1 {
        assert!(
            executor::steals_total() > steals_before,
            "multi-worker steal-heavy load must record steals"
        );
    }
}
