//! Exact MC³ solver (exponential time) — the reference optimum used to
//! validate Algorithm 2's optimality and Algorithm 3's approximation ratios
//! on small instances.
//!
//! Pipeline: (optional) preprocessing — which preserves at least one optimal
//! solution (§3) — then the WSC reduction per property-connected component,
//! each solved by `mc3-setcover`'s branch-and-bound.

use crate::components::connected_components;
use crate::preprocess::{preprocess, PreprocessOptions};
use crate::reduction::{reduce_to_wsc_with, ReductionScratch};
use crate::work::WorkState;
use mc3_core::{ClassifierUniverse, Instance, Mc3Error, Result, Solution};
use mc3_setcover::solve_exact_by_components as wsc_exact;

/// Element-count cap per component (inherited from the WSC exact solver).
pub const MAX_EXACT_ELEMENTS: usize = mc3_setcover::exact::MAX_EXACT_ELEMENTS;

/// Solves the instance to optimality (with preprocessing enabled — the
/// default, since Algorithm 1 preserves an optimal solution).
pub fn solve_exact(instance: &Instance) -> Result<Solution> {
    solve_exact_with(instance, &PreprocessOptions::default())
}

/// Solves to optimality with explicit preprocessing options
/// (`PreprocessOptions::disabled()` gives a fully independent reference,
/// used in tests to validate that preprocessing preserves the optimum).
pub fn solve_exact_with(instance: &Instance, opts: &PreprocessOptions) -> Result<Solution> {
    let universe = ClassifierUniverse::build(instance);
    let mut ws = WorkState::new(instance, universe);
    preprocess(&mut ws, opts)?;

    let alive = ws.alive_query_indices();
    let mut picked: Vec<mc3_core::ClassifierId> = ws.selected_ids().to_vec();
    let mut scratch = ReductionScratch::new();
    for comp in connected_components(instance.queries(), &alive) {
        let red = reduce_to_wsc_with(&ws, &comp, &mut scratch);
        if red.instance.num_elements() == 0 {
            scratch.recycle(red);
            continue;
        }
        let sol = wsc_exact(&red.instance).map_err(|e| match e {
            Mc3Error::Uncoverable { query_index } => Mc3Error::Uncoverable {
                query_index: red.element_origin[query_index].0 as usize,
            },
            other => other,
        })?;
        picked.extend(sol.selected.iter().map(|&s| red.set_to_classifier[s]));
        scratch.recycle(red);
    }
    Ok(Solution::from_ids(&ws.universe, picked))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mc3_core::{Weight, Weights, WeightsBuilder};

    #[test]
    fn paper_example_optimum_is_seven() {
        let w = WeightsBuilder::new()
            .classifier([3u32], 5u64)
            .classifier([2u32], 5u64)
            .classifier([0u32], 5u64)
            .classifier([1u32], 1u64)
            .classifier([2u32, 3], 3u64)
            .classifier([1u32, 2], 5u64)
            .classifier([0u32, 2], 3u64)
            .classifier([0u32, 1], 4u64)
            .classifier([0u32, 1, 2], 5u64)
            .build();
        let instance = Instance::new(vec![vec![0u32, 1, 2], vec![2u32, 3]], w).unwrap();
        let sol = solve_exact(&instance).unwrap();
        sol.verify(&instance).unwrap();
        assert_eq!(sol.cost(), Weight::new(7));
    }

    #[test]
    fn preprocessing_on_and_off_agree() {
        use mc3_core::rng::prelude::*;
        let mut rng = StdRng::seed_from_u64(4242);
        for round in 0..40 {
            let n = rng.gen_range(1..=5usize);
            let mut queries = Vec::new();
            for _ in 0..n {
                let len = rng.gen_range(1..=3usize);
                let props: Vec<u32> = (0..len).map(|_| rng.gen_range(0..6u32)).collect();
                queries.push(props);
            }
            let instance = Instance::new(queries.clone(), Weights::seeded(round, 1, 15)).unwrap();
            let with = solve_exact_with(&instance, &PreprocessOptions::default()).unwrap();
            let without = solve_exact_with(&instance, &PreprocessOptions::disabled()).unwrap();
            with.verify(&instance).unwrap();
            without.verify(&instance).unwrap();
            assert_eq!(
                with.cost(),
                without.cost(),
                "preprocessing changed the optimum on {queries:?} (round {round})"
            );
        }
    }

    #[test]
    fn disjoint_components_solved_independently() {
        let instance = Instance::new(
            vec![vec![0u32, 1], vec![2u32, 3], vec![4u32]],
            Weights::uniform(2u64),
        )
        .unwrap();
        let sol = solve_exact(&instance).unwrap();
        sol.verify(&instance).unwrap();
        // each 2-query costs one pair classifier (2), singleton costs 2
        assert_eq!(sol.cost(), Weight::new(6));
    }

    #[test]
    fn uniform_weights_prefer_pairs() {
        let instance = Instance::new(vec![vec![0u32, 1]], Weights::uniform(1u64)).unwrap();
        let sol = solve_exact(&instance).unwrap();
        assert_eq!(sol.cost(), Weight::new(1));
        assert_eq!(sol.len(), 1);
    }
}
