//! The process-wide work-stealing solve executor.
//!
//! `Mc3Solver` used to spawn a fresh `std::thread::scope` worker set per
//! parallel solve, so `N` concurrent `/solve` requests oversubscribed
//! the machine with `N × cores` threads. This module replaces that with
//! **one** lazily-initialized pool shared by every solve in the process:
//! a global injector queue feeding per-worker deques, sibling stealing
//! when a deque runs dry, and condvar parking when the whole pool is
//! idle. No external dependencies — the deques are mutexed `VecDeque`s,
//! which at component-solve granularity (microseconds to milliseconds
//! per task) costs noise compared to the solve itself.
//!
//! # Scoped submission
//!
//! [`scope`] is the only way to run tasks: it hands out a [`Scope`]
//! whose [`spawn`](Scope::spawn) accepts closures borrowing from the
//! caller's stack frame (the solver submits tasks that borrow its
//! `WorkState`). The scope blocks on a completion latch until every
//! spawned task has finished — including panicked ones — before
//! returning, which is what makes the lifetime erasure below sound and
//! guarantees **no task is ever lost**: a panicking task trips the
//! latch like any other, and the first panic payload is re-thrown on
//! the submitting thread once all of the scope's tasks are accounted
//! for.
//!
//! # Telemetry
//!
//! Workers keep raw, always-on counters ([`tasks_total`],
//! [`steals_total`], [`thread_spawns_total`], [`queue_depth`]) and
//! mirror them into the gated registry (`exec_tasks`, `exec_steals`,
//! `exec_park_ns`, and the `exec_wait_ns` queue-latency histogram) so
//! `mc3 serve` exposes them on `/metrics`. Each task runs inside its own
//! [`mc3_telemetry::ScopedSession`] whose captured span roots are
//! *discarded*: the workers live as long as the process, and under the
//! server's lifetime session their span roots would otherwise pile up
//! in the global finished list forever. Counters and histograms are
//! process-global atomics, so solver instrumentation still aggregates;
//! only worker-side span *trees* are traded away (the request/CLI
//! thread's own `solve` → `setup`/`preprocess`/`solve_core` tree is
//! untouched).

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, OnceLock};

/// Tasks a worker grabs from the injector in one lock acquisition: the
/// first runs immediately, the rest land in its local deque — which is
/// what gives idle siblings something to steal.
const INJECTOR_GRAB: usize = 8;

/// Park timeout; a periodic wake-up bounds the damage if a submission's
/// notify races a worker already committed to parking.
const PARK_TIMEOUT_MS: u64 = 100;

/// A lifetime-erased unit of work plus its enqueue timestamp.
struct Task {
    job: Box<dyn FnOnce() + Send + 'static>,
    enqueue_ns: u64,
}

struct Pool {
    injector: Mutex<VecDeque<Task>>,
    /// Per-worker deques: the owner pops the front (preserving the
    /// scheduler's dispatch order), thieves steal from the back.
    deques: Vec<Mutex<VecDeque<Task>>>,
    idle: Mutex<()>,
    wake: Condvar,
}

/// Desired worker count for the pool, set before first use; `0` = auto
/// (`available_parallelism`).
static CONFIGURED: AtomicUsize = AtomicUsize::new(0);
static POOL: OnceLock<&'static Pool> = OnceLock::new();

static THREAD_SPAWNS: AtomicU64 = AtomicU64::new(0);
static TASKS: AtomicU64 = AtomicU64::new(0);
static STEALS: AtomicU64 = AtomicU64::new(0);

/// Requests a worker count for the shared pool. Only effective before
/// the pool's first use (it is sized exactly once, lazily); returns
/// whether the request took effect. Calling it after the pool exists is
/// not an error — the running size simply wins, and the caller can
/// compare against [`pool_threads`].
pub fn configure_threads(n: usize) -> bool {
    if POOL.get().is_some() {
        return false;
    }
    // audit:allow(no-relaxed-atomics) reviewed: config word read once under OnceLock's initialization fence; racing configs pick one winner either way
    CONFIGURED.store(n, Ordering::Relaxed);
    POOL.get().is_none()
}

/// The worker count the pool runs (or would run) with: the configured
/// override, else `available_parallelism()` (4 when unknown).
pub fn effective_threads() -> usize {
    // audit:allow(no-relaxed-atomics) reviewed: config word — single value, no ordering dependency
    let configured = CONFIGURED.load(Ordering::Relaxed);
    if configured > 0 {
        configured
    } else {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(4)
    }
}

/// Worker threads the live pool runs; `0` before first use.
pub fn pool_threads() -> usize {
    POOL.get().map_or(0, |p| p.deques.len())
}

/// Total worker threads ever spawned by the executor. The pool is fixed
/// after initialization, so under steady load this **must not grow** —
/// the serving acceptance gate reads it before and after a warm load
/// run and requires a zero delta.
pub fn thread_spawns_total() -> u64 {
    // audit:allow(no-relaxed-atomics) reviewed: monotonic diagnostic counter
    THREAD_SPAWNS.load(Ordering::Relaxed)
}

/// Tasks executed by the pool since process start (always on, unlike the
/// gated `exec_tasks` registry counter).
pub fn tasks_total() -> u64 {
    // audit:allow(no-relaxed-atomics) reviewed: monotonic diagnostic counter
    TASKS.load(Ordering::Relaxed)
}

/// Tasks taken from a sibling worker's deque since process start.
pub fn steals_total() -> u64 {
    // audit:allow(no-relaxed-atomics) reviewed: monotonic diagnostic counter
    STEALS.load(Ordering::Relaxed)
}

/// Instantaneous queued-task count (injector + every worker deque) —
/// the `mc3_exec_queue_depth` gauge.
pub fn queue_depth() -> u64 {
    let Some(pool) = POOL.get() else {
        return 0;
    };
    let mut depth = pool.injector.lock().map_or(0, |q| q.len() as u64);
    for deque in &pool.deques {
        depth += deque.lock().map_or(0, |q| q.len() as u64);
    }
    depth
}

fn pool() -> &'static Pool {
    POOL.get_or_init(|| {
        let threads = effective_threads().max(1);
        let pool: &'static Pool = Box::leak(Box::new(Pool {
            injector: Mutex::new(VecDeque::new()),
            deques: (0..threads).map(|_| Mutex::new(VecDeque::new())).collect(),
            idle: Mutex::new(()),
            wake: Condvar::new(),
        }));
        for i in 0..threads {
            // audit:allow(no-relaxed-atomics) reviewed: monotonic diagnostic counter
            THREAD_SPAWNS.fetch_add(1, Ordering::Relaxed);
            let spawned = std::thread::Builder::new()
                .name(format!("mc3-exec-{i}"))
                .spawn(move || worker_loop(pool, i));
            if let Err(e) = spawned {
                // A partially-spawned pool still drains every task —
                // workers are interchangeable — so degrade loudly
                // rather than failing the solve.
                mc3_obs::warn(
                    "solver.executor",
                    "worker spawn failed; pool runs below configured size",
                    &[("error", mc3_obs::Value::Str(e.to_string()))],
                );
            }
        }
        pool
    })
}

fn worker_loop(pool: &'static Pool, me: usize) {
    loop {
        if let Some(task) = next_task(pool, me) {
            let waited = mc3_telemetry::monotonic_ns().saturating_sub(task.enqueue_ns);
            mc3_telemetry::record(mc3_telemetry::Hist::ExecWaitNs, waited);
            // audit:allow(no-relaxed-atomics) reviewed: monotonic diagnostic counter
            TASKS.fetch_add(1, Ordering::Relaxed);
            mc3_telemetry::count(mc3_telemetry::Counter::ExecTasks, 1);
            // Capture-and-discard this task's span roots: worker threads
            // outlive every request, and filing roots into the global
            // finished list under a server-lifetime session would grow
            // it without bound. See the module docs.
            let task_scope = mc3_telemetry::ScopedSession::begin();
            (task.job)();
            drop(task_scope.finish());
        } else {
            let parked_at = mc3_telemetry::monotonic_ns();
            if let Ok(guard) = pool.idle.lock() {
                // Re-check under the lock: a task enqueued between our
                // empty poll and this lock must not be slept through.
                if has_work(pool) {
                    continue;
                }
                // audit:allow(no-swallowed-result) reviewed: timeout-based park — both wake paths rejoin the poll loop above
                let _ = pool
                    .wake
                    .wait_timeout(guard, std::time::Duration::from_millis(PARK_TIMEOUT_MS));
            }
            let parked = mc3_telemetry::monotonic_ns().saturating_sub(parked_at);
            mc3_telemetry::count(mc3_telemetry::Counter::ExecParkNs, parked);
        }
    }
}

fn has_work(pool: &Pool) -> bool {
    if pool.injector.lock().is_ok_and(|q| !q.is_empty()) {
        return true;
    }
    pool.deques
        .iter()
        .any(|d| d.lock().is_ok_and(|q| !q.is_empty()))
}

/// Takes the next task for worker `me`: own deque front → a batch from
/// the injector → steal from a sibling's back.
fn next_task(pool: &Pool, me: usize) -> Option<Task> {
    if let Some(task) = pool.deques.get(me).and_then(|d| match d.lock() {
        Ok(mut q) => q.pop_front(),
        Err(_) => None,
    }) {
        return Some(task);
    }
    // Injector: move a small batch into the local deque so siblings that
    // drain first have something to steal.
    if let Ok(mut injector) = pool.injector.lock() {
        if let Some(first) = injector.pop_front() {
            if let Some(Ok(mut local)) = pool.deques.get(me).map(|d| d.lock()) {
                for _ in 1..INJECTOR_GRAB {
                    match injector.pop_front() {
                        Some(t) => local.push_back(t),
                        None => break,
                    }
                }
            }
            drop(injector);
            // The batch left surplus in our deque — siblings may want it.
            pool.wake.notify_all();
            return Some(first);
        }
    }
    // Steal: scan siblings starting after ourselves, taking from the
    // *back* (the owner consumes the front, so contention only meets at
    // a one-element deque).
    let n = pool.deques.len();
    for off in 1..n {
        let victim = (me + off) % n;
        let stolen = pool.deques.get(victim).and_then(|d| match d.lock() {
            Ok(mut q) => q.pop_back(),
            Err(_) => None,
        });
        if let Some(task) = stolen {
            // audit:allow(no-relaxed-atomics) reviewed: monotonic diagnostic counter
            STEALS.fetch_add(1, Ordering::Relaxed);
            mc3_telemetry::count(mc3_telemetry::Counter::ExecSteals, 1);
            return Some(task);
        }
    }
    None
}

/// Synchronization state of one [`scope`] call: how many spawned tasks
/// are still outstanding, and the first panic payload any of them
/// produced.
struct Latch {
    state: Mutex<LatchState>,
    done: Condvar,
}

struct LatchState {
    outstanding: usize,
    panic: Option<Box<dyn std::any::Any + Send>>,
}

impl Latch {
    fn new() -> Latch {
        Latch {
            state: Mutex::new(LatchState {
                outstanding: 0,
                panic: None,
            }),
            done: Condvar::new(),
        }
    }

    fn task_finished(&self, panic: Option<Box<dyn std::any::Any + Send>>) {
        let mut state = self.state.lock().unwrap_or_else(|p| p.into_inner());
        state.outstanding -= 1;
        if state.panic.is_none() {
            state.panic = panic;
        }
        if state.outstanding == 0 {
            self.done.notify_all();
        }
    }

    /// Blocks until every registered task has finished; returns the
    /// first captured panic payload.
    fn wait(&self) -> Option<Box<dyn std::any::Any + Send>> {
        let mut state = self.state.lock().unwrap_or_else(|p| p.into_inner());
        while state.outstanding > 0 {
            state = match self.done.wait(state) {
                Ok(s) => s,
                Err(p) => p.into_inner(),
            };
        }
        state.panic.take()
    }
}

/// A `Send` latch pointer for the worker side of a task. Soundness is
/// argued at the use sites: the latch outlives every task registered
/// with it because [`scope`] blocks until the count drains.
struct LatchPtr(*const Latch);
// SAFETY: `Latch` itself is `Sync` (a Mutex + Condvar), and the pointer
// is only dereferenced while `scope` keeps the pointee alive.
unsafe impl Send for LatchPtr {}

/// A handle for spawning borrowing tasks onto the shared pool; only
/// obtainable through [`scope`], which guarantees every task finishes
/// before the borrowed data goes out of scope.
pub struct Scope<'scope> {
    pool: &'static Pool,
    /// The owning [`scope`] call's latch. A raw pointer rather than a
    /// borrow so `'scope` stays free for the *spawned closures'* data —
    /// the latch is a local of `scope`, which provably outlives every
    /// use (it drains the count before returning).
    latch: *const Latch,
    /// Ties the borrow lifetime to the scope (invariantly) so spawned
    /// closures may borrow from the caller's frame.
    _marker: std::marker::PhantomData<&'scope mut &'scope ()>,
}

impl<'scope> Scope<'scope> {
    /// Submits a task to the shared pool. The closure may borrow
    /// anything that outlives the [`scope`] call.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce() + Send + 'scope,
    {
        {
            // SAFETY: `Scope` only exists inside `scope`'s body, whose
            // stack frame owns the latch.
            let latch = unsafe { &*self.latch };
            let mut state = latch.state.lock().unwrap_or_else(|p| p.into_inner());
            state.outstanding += 1;
        }
        let latch_ptr = LatchPtr(self.latch);
        // Wrap the user closure so completion (or panic) always reaches
        // the latch, then erase its borrow lifetime for the queue.
        let job: Box<dyn FnOnce() + Send + 'scope> = Box::new(move || {
            // Bind the wrapper itself so closure capture takes the `Send`
            // struct, not its raw-pointer field.
            let latch_ptr = latch_ptr;
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(f));
            // SAFETY: `scope` does not return until the latch counts
            // this task finished, so the latch (owned by `scope`'s
            // stack frame) is alive for every dereference here.
            let latch = unsafe { &*latch_ptr.0 };
            latch.task_finished(outcome.err());
        });
        // SAFETY: lifetime erasure only — the pointee type is identical.
        // The closure (and every borrow inside it) is consumed before
        // `scope` returns: `Scope` is only handed out inside `scope`,
        // which blocks on `latch.wait()` until `outstanding == 0`, and
        // `outstanding` reaches 0 only after each job ran (or panicked
        // inside `catch_unwind`) on a worker. Workers never drop a task
        // un-run: the queues are only consumed by `next_task`, and
        // worker threads live for the whole process.
        let job: Box<dyn FnOnce() + Send + 'static> = unsafe { std::mem::transmute(job) };
        let task = Task {
            job,
            enqueue_ns: mc3_telemetry::monotonic_ns(),
        };
        if let Ok(mut injector) = self.pool.injector.lock() {
            injector.push_back(task);
        } else {
            // A poisoned injector means a worker panicked *inside the
            // queue lock*, which no code path does; run inline rather
            // than lose the task.
            (task.job)();
        }
        self.pool.wake.notify_one();
    }
}

/// Runs `f` with a [`Scope`] bound to the shared pool and blocks until
/// every task it spawned has completed. If any task panicked, the first
/// panic payload is resumed on this thread — after all sibling tasks
/// finished, so no task is ever abandoned mid-queue. The pool is
/// created on first use, sized by [`configure_threads`].
pub fn scope<'env, F, R>(f: F) -> R
where
    F: FnOnce(&Scope<'env>) -> R,
{
    let pool = pool();
    let latch = Latch::new();
    let scope = Scope {
        pool,
        latch: &latch,
        _marker: std::marker::PhantomData,
    };
    // `f` itself may panic after spawning tasks; those tasks still
    // borrow the caller's frame, so the latch wait must happen before
    // the panic propagates.
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(&scope)));
    let task_panic = latch.wait();
    match result {
        Ok(r) => {
            if let Some(payload) = task_panic {
                std::panic::resume_unwind(payload);
            }
            r
        }
        Err(payload) => std::panic::resume_unwind(payload),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn scope_runs_every_task_and_waits() {
        let hits = AtomicUsize::new(0);
        scope(|s| {
            for _ in 0..64 {
                s.spawn(|| {
                    hits.fetch_add(1, Ordering::SeqCst);
                });
            }
        });
        assert_eq!(hits.load(Ordering::SeqCst), 64);
    }

    #[test]
    fn tasks_may_borrow_the_callers_stack() {
        let data: Vec<u64> = (0..100).collect();
        let results: Vec<Mutex<u64>> = data.iter().map(|_| Mutex::new(0)).collect();
        scope(|s| {
            for (i, &v) in data.iter().enumerate() {
                let cell = &results[i];
                s.spawn(move || {
                    if let Ok(mut slot) = cell.lock() {
                        *slot = v * 2;
                    }
                });
            }
        });
        for (i, cell) in results.iter().enumerate() {
            assert_eq!(*cell.lock().expect("unpoisoned"), (i as u64) * 2);
        }
    }

    #[test]
    fn panicking_task_propagates_after_all_tasks_finish() {
        let hits = AtomicUsize::new(0);
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            scope(|s| {
                for i in 0..32 {
                    let hits = &hits;
                    s.spawn(move || {
                        if i == 7 {
                            panic!("task 7 exploded");
                        }
                        hits.fetch_add(1, Ordering::SeqCst);
                    });
                }
            });
        }));
        assert!(caught.is_err(), "the task panic must reach the scope");
        // No task was lost: every non-panicking task still ran.
        assert_eq!(hits.load(Ordering::SeqCst), 31);
    }

    #[test]
    fn nested_scopes_from_tasks_do_not_deadlock() {
        // A task that opens its own scope would deadlock a pool whose
        // workers block on inner completion — this pins that inner
        // scopes submitted from the *caller* thread (the solver's actual
        // pattern: scopes only ever open on request/CLI threads) drain
        // even while outer tasks hold workers busy.
        let outer = AtomicUsize::new(0);
        scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    std::thread::sleep(std::time::Duration::from_millis(5));
                    outer.fetch_add(1, Ordering::SeqCst);
                });
            }
        });
        scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    outer.fetch_add(1, Ordering::SeqCst);
                });
            }
        });
        assert_eq!(outer.load(Ordering::SeqCst), 8);
    }

    #[test]
    fn accounting_counters_are_monotone() {
        let spawns_before = thread_spawns_total();
        let tasks_before = tasks_total();
        scope(|s| {
            for _ in 0..16 {
                s.spawn(|| {});
            }
        });
        assert!(tasks_total() >= tasks_before + 16);
        // The pool exists now; running more work must not spawn threads.
        let spawns_mid = thread_spawns_total();
        assert!(spawns_mid >= spawns_before);
        scope(|s| {
            for _ in 0..16 {
                s.spawn(|| {});
            }
        });
        assert_eq!(
            thread_spawns_total(),
            spawns_mid,
            "steady-state executor must never spawn"
        );
        assert!(pool_threads() >= 1);
    }
}
