//! Mutable working state shared by the preprocessing pipeline (Algorithm 1)
//! and the solvers built on top of it.
//!
//! Tracks, per classifier: the *current* weight (selection zeroes it), the
//! *effective* weight (Step 3 replaces removed classifiers by their cheapest
//! decomposition cost), removal and selection flags; and per query: liveness
//! and the bitmask of properties already covered by selected classifiers.
//!
//! A CSR occurrence index maps every classifier to the `(query, local mask)`
//! pairs it appears in, so selections propagate coverage in time linear in
//! the classifier's total incidence.

use mc3_core::u32_of;
use mc3_core::{ClassifierId, ClassifierUniverse, Instance, Weight};

/// Mutable solver state over an instance and its classifier universe.
#[derive(Debug, Clone)]
pub struct WorkState<'a> {
    /// The underlying instance.
    pub instance: &'a Instance,
    /// Its (possibly length-bounded) classifier universe.
    pub universe: ClassifierUniverse,
    // CSR: occurrences of classifier c are occ_q/occ_mask[occ_off[c] .. occ_off[c+1]]
    occ_off: Vec<u32>,
    occ_q: Vec<u32>,
    occ_mask: Vec<u32>,
    /// Current weight per classifier (0 once selected).
    pub weight: Vec<Weight>,
    /// Effective weight per classifier: current weight if available, else
    /// the cost of its cheapest decomposition (Step 3 bookkeeping).
    pub eff: Vec<Weight>,
    /// Classifiers removed by pruning (never selectable afterwards).
    pub removed: Vec<bool>,
    /// Classifiers committed to the solution.
    pub selected: Vec<bool>,
    selected_list: Vec<ClassifierId>,
    /// Total weight of selected classifiers, accumulated at selection time.
    pub base_cost: Weight,
    /// Query liveness (false once fully covered).
    pub alive: Vec<bool>,
    /// Per query: bitmask of properties covered by selected classifiers.
    pub covered: Vec<u32>,
    /// Number of alive queries a classifier still appears in.
    pub relevant_count: Vec<u32>,
    alive_queries: usize,
}

impl<'a> WorkState<'a> {
    /// Builds the working state, including the occurrence index.
    pub fn new(instance: &'a Instance, universe: ClassifierUniverse) -> WorkState<'a> {
        let m = universe.len();
        let nq = instance.num_queries();

        // Count occurrences per classifier, then fill CSR.
        let mut counts = vec![0u32; m];
        for qi in 0..nq {
            let local = universe.query_local(qi);
            for &id in &local.table {
                if !id.is_none() {
                    counts[id.index()] += 1;
                }
            }
        }
        let mut occ_off = vec![0u32; m + 1];
        for c in 0..m {
            occ_off[c + 1] = occ_off[c] + counts[c];
        }
        let total = occ_off[m] as usize;
        let mut occ_q = vec![0u32; total];
        let mut occ_mask = vec![0u32; total];
        let mut cursor = occ_off.clone();
        for qi in 0..nq {
            let local = universe.query_local(qi);
            for (mask, &id) in local.table.iter().enumerate() {
                if !id.is_none() {
                    let slot = cursor[id.index()] as usize;
                    occ_q[slot] = u32_of(qi);
                    occ_mask[slot] = u32_of(mask);
                    cursor[id.index()] += 1;
                }
            }
        }

        let weight = universe.weights().to_vec();
        let eff = weight.clone();
        WorkState {
            instance,
            universe,
            occ_off,
            occ_q,
            occ_mask,
            weight,
            eff,
            removed: vec![false; m],
            selected: vec![false; m],
            selected_list: Vec::new(),
            base_cost: Weight::ZERO,
            alive: vec![true; nq],
            covered: vec![0; nq],
            relevant_count: counts,
            alive_queries: nq,
        }
    }

    /// The `(query, local mask)` occurrences of classifier `c`.
    #[inline]
    pub fn occurrences(&self, c: ClassifierId) -> impl Iterator<Item = (u32, u32)> + '_ {
        let lo = self.occ_off[c.index()] as usize;
        let hi = self.occ_off[c.index() + 1] as usize;
        self.occ_q[lo..hi]
            .iter()
            .copied()
            .zip(self.occ_mask[lo..hi].iter().copied())
    }

    /// Whether `c` may still participate in covers (not pruned) — selected
    /// classifiers stay available at weight 0.
    #[inline]
    pub fn is_available(&self, c: ClassifierId) -> bool {
        !self.removed[c.index()]
    }

    /// Whether `c` is available *and* selectable at finite cost.
    #[inline]
    pub fn is_usable(&self, c: ClassifierId) -> bool {
        !self.removed[c.index()] && self.weight[c.index()].is_finite()
    }

    /// The still-needed property mask of query `q` (0 for covered queries).
    #[inline]
    pub fn need(&self, q: usize) -> u32 {
        self.universe.query_local(q).full_mask() & !self.covered[q]
    }

    /// Number of alive (not yet covered) queries.
    #[inline]
    pub fn alive_queries(&self) -> usize {
        self.alive_queries
    }

    /// Classifiers selected so far, in selection order.
    #[inline]
    pub fn selected_ids(&self) -> &[ClassifierId] {
        &self.selected_list
    }

    /// Selects classifier `c`: accumulates its current weight into the base
    /// cost, zeroes the weight, and propagates coverage, killing queries
    /// that become fully covered. Returns the list of queries killed.
    ///
    /// Panics (debug) if `c` was removed or has infinite weight.
    pub fn select(&mut self, c: ClassifierId) -> Vec<u32> {
        debug_assert!(!self.removed[c.index()], "selecting a removed classifier");
        debug_assert!(
            self.weight[c.index()].is_finite(),
            "selecting an infinite-weight classifier"
        );
        if self.selected[c.index()] {
            return Vec::new();
        }
        self.selected[c.index()] = true;
        self.selected_list.push(c);
        self.base_cost = self.base_cost.saturating_add(self.weight[c.index()]);
        self.weight[c.index()] = Weight::ZERO;
        self.eff[c.index()] = Weight::ZERO;

        let lo = self.occ_off[c.index()] as usize;
        let hi = self.occ_off[c.index() + 1] as usize;
        let mut killed = Vec::new();
        for i in lo..hi {
            let q = self.occ_q[i] as usize;
            if !self.alive[q] {
                continue;
            }
            self.covered[q] |= self.occ_mask[i];
            if self.need(q) == 0 {
                killed.push(u32_of(q));
            }
        }
        for &q in &killed {
            self.kill_query(q as usize);
        }
        killed
    }

    /// Marks query `q` dead and decrements the relevance counts of all its
    /// classifiers; classifiers that become irrelevant (appear in no alive
    /// query) are removed unless selected.
    pub fn kill_query(&mut self, q: usize) {
        if !self.alive[q] {
            return;
        }
        self.alive[q] = false;
        self.alive_queries -= 1;
        let table_len = self.universe.query_local(q).table.len();
        for mask in 1..table_len {
            let id = self.universe.query_local(q).table[mask];
            if id.is_none() {
                continue;
            }
            let idx = id.index();
            self.relevant_count[idx] -= 1;
            if self.relevant_count[idx] == 0 && !self.selected[idx] {
                self.removed[idx] = true;
            }
        }
    }

    /// Removes classifier `c` from consideration (Step 3 / Step 4 pruning),
    /// recording `replacement_cost` as its effective weight.
    pub fn remove(&mut self, c: ClassifierId, replacement_cost: Weight) {
        debug_assert!(!self.selected[c.index()], "removing a selected classifier");
        self.removed[c.index()] = true;
        self.eff[c.index()] = replacement_cost;
    }

    /// Indices of alive queries.
    pub fn alive_query_indices(&self) -> Vec<usize> {
        (0..self.alive.len()).filter(|&q| self.alive[q]).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mc3_core::{PropSet, Weights};

    fn state(queries: Vec<Vec<u32>>) -> (Instance, ()) {
        let inst = Instance::new(queries, Weights::uniform(2u64)).unwrap();
        (inst, ())
    }

    #[test]
    fn occurrence_index_matches_tables() {
        let (inst, _) = state(vec![vec![0, 1], vec![1, 2]]);
        let u = ClassifierUniverse::build(&inst);
        let ws = WorkState::new(&inst, u);
        let y = ws.universe.id_of(&PropSet::from_ids([1u32])).unwrap();
        let occ: Vec<_> = ws.occurrences(y).collect();
        assert_eq!(occ.len(), 2); // y appears in both queries
        let xy = ws.universe.id_of(&PropSet::from_ids([0u32, 1])).unwrap();
        let occ: Vec<_> = ws.occurrences(xy).collect();
        assert_eq!(occ.len(), 1);
        assert_eq!(ws.relevant_count[xy.index()], 1);
    }

    #[test]
    fn select_covers_and_kills() {
        let (inst, _) = state(vec![vec![0, 1], vec![1, 2]]);
        let u = ClassifierUniverse::build(&inst);
        let mut ws = WorkState::new(&inst, u);
        let xy = ws.universe.id_of(&PropSet::from_ids([0u32, 1])).unwrap();
        let killed = ws.select(xy);
        assert_eq!(killed, vec![0]);
        assert_eq!(ws.alive_queries(), 1);
        assert_eq!(ws.base_cost, Weight::new(2));
        assert!(ws.weight[xy.index()].is_zero());
        // second query partially covered via Y? no: XY is not a subset of {1,2}
        assert_eq!(ws.need(1), 0b11);
    }

    #[test]
    fn selecting_shared_singleton_partially_covers() {
        let (inst, _) = state(vec![vec![0, 1], vec![1, 2]]);
        let u = ClassifierUniverse::build(&inst);
        let mut ws = WorkState::new(&inst, u);
        let y = ws.universe.id_of(&PropSet::from_ids([1u32])).unwrap();
        let killed = ws.select(y);
        assert!(killed.is_empty());
        assert_eq!(ws.alive_queries(), 2);
        // y is the smaller property in query 0 ({0,1} → bit of 1 is index 1)
        assert_eq!(ws.need(0).count_ones(), 1);
        assert_eq!(ws.need(1).count_ones(), 1);
    }

    #[test]
    fn kill_query_removes_private_classifiers() {
        let (inst, _) = state(vec![vec![0, 1], vec![1, 2]]);
        let u = ClassifierUniverse::build(&inst);
        let mut ws = WorkState::new(&inst, u);
        let xy = ws.universe.id_of(&PropSet::from_ids([0u32, 1])).unwrap();
        let x = ws.universe.id_of(&PropSet::from_ids([0u32])).unwrap();
        let y = ws.universe.id_of(&PropSet::from_ids([1u32])).unwrap();
        ws.kill_query(0);
        assert!(ws.removed[xy.index()], "XY only relevant to query 0");
        assert!(ws.removed[x.index()], "X only relevant to query 0");
        assert!(!ws.removed[y.index()], "Y still relevant to query 1");
    }

    #[test]
    fn double_select_is_idempotent() {
        let (inst, _) = state(vec![vec![0, 1]]);
        let u = ClassifierUniverse::build(&inst);
        let mut ws = WorkState::new(&inst, u);
        let x = ws.universe.id_of(&PropSet::from_ids([0u32])).unwrap();
        ws.select(x);
        ws.select(x);
        assert_eq!(ws.base_cost, Weight::new(2));
        assert_eq!(ws.selected_ids().len(), 1);
    }

    #[test]
    fn remove_records_replacement_cost() {
        let (inst, _) = state(vec![vec![0, 1]]);
        let u = ClassifierUniverse::build(&inst);
        let mut ws = WorkState::new(&inst, u);
        let xy = ws.universe.id_of(&PropSet::from_ids([0u32, 1])).unwrap();
        ws.remove(xy, Weight::new(4));
        assert!(!ws.is_available(xy));
        assert_eq!(ws.eff[xy.index()], Weight::new(4));
        assert_eq!(ws.weight[xy.index()], Weight::new(2)); // original untouched
    }
}
