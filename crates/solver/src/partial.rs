//! The budgeted *partial cover* variant (§5.3 / §8 — flagged by the paper
//! as future work): queries carry importance weights, the classifier budget
//! is bounded, and the goal is to maximize the total importance of **fully**
//! covered queries.
//!
//! The paper notes its WSC reduction breaks here — covering some elements of
//! a query is worthless (partially conforming results can be worse than none
//! \[23\]) — and that the problem is much harder to approximate. We provide
//! the natural greedy prototype: repeatedly commit the cheapest residual
//! cover of the query with the best importance/marginal-cost ratio that
//! still fits the budget. No approximation guarantee is claimed.

use crate::cover_dp::min_cover;
use crate::work::WorkState;
use mc3_core::{ClassifierUniverse, Instance, Result, Solution, Weight};

/// Strategy for the budgeted partial-cover variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PartialStrategy {
    /// Query-level greedy: repeatedly commit the best value/marginal-cost
    /// residual cover that fits (the natural baseline heuristic).
    #[default]
    QueryGreedy,
    /// Component knapsack: price each property-connected component's *full*
    /// cover (components are independent, Observation 3.2), then select a
    /// component subset by 0/1 knapsack — exact budget DP when the budget
    /// is small enough, density greedy otherwise. All-or-nothing per
    /// component, so within-component partial progress is not exploited.
    ComponentKnapsack,
    /// Run both and keep the higher-value outcome (ties: cheaper).
    Best,
}

/// Outcome of a budgeted partial-cover run.
#[derive(Debug, Clone)]
pub struct PartialCoverOutcome {
    /// The classifiers selected (cost ≤ budget).
    pub solution: Solution,
    /// Indices of fully covered queries, ascending.
    pub covered_queries: Vec<usize>,
    /// Total importance of covered queries.
    pub covered_value: u64,
    /// Remaining budget.
    pub budget_left: Weight,
}

/// Budgeted partial cover with the default ([`PartialStrategy::Best`])
/// strategy. `query_values[i]` is the importance of query `i` (must match
/// `instance.num_queries()`).
pub fn solve_partial_cover(
    instance: &Instance,
    query_values: &[u64],
    budget: Weight,
) -> Result<PartialCoverOutcome> {
    solve_partial_cover_with(instance, query_values, budget, PartialStrategy::Best)
}

/// Budgeted partial cover with an explicit strategy.
pub fn solve_partial_cover_with(
    instance: &Instance,
    query_values: &[u64],
    budget: Weight,
    strategy: PartialStrategy,
) -> Result<PartialCoverOutcome> {
    assert_eq!(
        query_values.len(),
        instance.num_queries(),
        "one value per (deduplicated, canonical-order) query required"
    );
    match strategy {
        PartialStrategy::QueryGreedy => query_greedy(instance, query_values, budget),
        PartialStrategy::ComponentKnapsack => component_knapsack(instance, query_values, budget),
        PartialStrategy::Best => {
            let a = query_greedy(instance, query_values, budget)?;
            let b = component_knapsack(instance, query_values, budget)?;
            Ok(
                if (b.covered_value, std::cmp::Reverse(b.solution.cost()))
                    > (a.covered_value, std::cmp::Reverse(a.solution.cost()))
                {
                    b
                } else {
                    a
                },
            )
        }
    }
}

/// The query-level greedy strategy.
fn query_greedy(
    instance: &Instance,
    query_values: &[u64],
    budget: Weight,
) -> Result<PartialCoverOutcome> {
    let universe = ClassifierUniverse::build(instance);
    let mut ws = WorkState::new(instance, universe);
    let mut budget_left = budget;
    let mut covered_queries = Vec::new();
    let mut covered_value = 0u64;

    loop {
        // pick the best value/marginal-cost query that fits
        let mut best: Option<(usize, Weight)> = None;
        for q in 0..instance.num_queries() {
            if !ws.alive[q] {
                continue;
            }
            let Some((cost, _)) = min_cover(&ws, q) else {
                continue; // uncoverable under finite weights: skip
            };
            if cost > budget_left {
                continue;
            }
            let better = match best {
                None => true,
                Some((bq, bcost)) => {
                    // compare value/cost ratios by cross multiplication;
                    // zero-cost covers are infinitely good
                    let (v, bv) = (query_values[q] as u128, query_values[bq] as u128);
                    let (c, bc) = (cost.raw() as u128, bcost.raw() as u128);
                    v * bc > bv * c || (v * bc == bv * c && cost < bcost)
                }
            };
            if better {
                best = Some((q, cost));
            }
        }
        let Some((q, cost)) = best else { break };
        // audit:allow(no-unwrap-in-lib) q was just chosen because min_cover succeeded on it
        let (_, ids) = min_cover(&ws, q).expect("re-evaluating the chosen query");
        for id in ids {
            ws.select(id);
        }
        budget_left = Weight::new(budget_left.raw() - cost.raw());
        // selections may have covered other queries for free
        for (qi, &value) in query_values.iter().enumerate() {
            if !ws.alive[qi] && !covered_queries.contains(&qi) {
                covered_queries.push(qi);
                covered_value += value;
            }
        }
    }

    covered_queries.sort_unstable();
    let solution = Solution::from_ids(&ws.universe, ws.selected_ids().iter().copied());
    Ok(PartialCoverOutcome {
        solution,
        covered_queries,
        covered_value,
        budget_left,
    })
}

/// Budget cap below which the knapsack uses the exact DP over budget units.
const KNAPSACK_DP_BUDGET_CAP: u64 = 200_000;

/// The component-knapsack strategy.
fn component_knapsack(
    instance: &Instance,
    query_values: &[u64],
    budget: Weight,
) -> Result<PartialCoverOutcome> {
    use crate::components::connected_components;

    let all: Vec<usize> = (0..instance.num_queries()).collect();
    let comps = connected_components(instance.queries(), &all);

    // price every component's full cover with the guarantee-carrying solver
    struct Item {
        queries: Vec<usize>,
        cost: u64,
        value: u64,
        solution: Solution,
    }
    let mut items: Vec<Item> = Vec::with_capacity(comps.len());
    for comp in comps {
        let sub = instance.restrict_to(&comp)?;
        let Ok(solution) = crate::solver::Mc3Solver::new().solve(&sub) else {
            continue; // uncoverable component cannot be bought
        };
        let value = comp.iter().map(|&q| query_values[q]).sum();
        items.push(Item {
            queries: comp,
            cost: solution.cost().raw(),
            value,
            solution,
        });
    }

    // 0/1 knapsack over the components
    let budget_raw = budget.raw();
    let chosen: Vec<usize> = if budget_raw <= KNAPSACK_DP_BUDGET_CAP {
        // exact DP over budget units
        let b = budget_raw as usize;
        let mut best = vec![0u64; b + 1];
        let mut take = vec![vec![false; b + 1]; items.len()];
        for (i, item) in items.iter().enumerate() {
            let c = item.cost as usize;
            if c > b {
                continue;
            }
            for cap in (c..=b).rev() {
                let with = best[cap - c] + item.value;
                if with > best[cap] {
                    best[cap] = with;
                    take[i][cap] = true;
                }
            }
        }
        let mut cap = b;
        let mut chosen = Vec::new();
        for i in (0..items.len()).rev() {
            if take[i][cap] {
                chosen.push(i);
                cap -= items[i].cost as usize;
            }
        }
        chosen
    } else {
        // density greedy fallback for astronomically large budgets
        let mut order: Vec<usize> = (0..items.len()).collect();
        order.sort_by(|&a, &b| {
            let da = items[a].value as u128 * items[b].cost.max(1) as u128;
            let db = items[b].value as u128 * items[a].cost.max(1) as u128;
            db.cmp(&da).then(items[a].cost.cmp(&items[b].cost))
        });
        let mut left = budget_raw;
        let mut chosen = Vec::new();
        for i in order {
            if items[i].cost <= left {
                left -= items[i].cost;
                chosen.push(i);
            }
        }
        chosen
    };

    let mut covered_queries = Vec::new();
    let mut covered_value = 0u64;
    let mut classifiers = Vec::new();
    let mut spent = 0u64;
    for &i in &chosen {
        covered_queries.extend(items[i].queries.iter().copied());
        covered_value += items[i].value;
        spent += items[i].cost;
        classifiers.extend(items[i].solution.classifiers().iter().cloned());
    }
    covered_queries.sort_unstable();
    let solution = Solution::with_cost(classifiers, Weight::new(spent));
    Ok(PartialCoverOutcome {
        solution,
        covered_queries,
        covered_value,
        budget_left: Weight::new(budget_raw - spent),
    })
}

/// Brute-force reference: maximizes covered value over all query subsets
/// (each priced by the exact solver). Exponential — tests only.
pub fn solve_partial_exact(
    instance: &Instance,
    query_values: &[u64],
    budget: Weight,
) -> Result<(u64, Weight)> {
    let n = instance.num_queries();
    assert!(n <= 12, "brute-force partial cover limited to 12 queries");
    let mut best_value = 0u64;
    let mut best_cost = Weight::ZERO;
    for mask in 0u32..(1 << n) {
        let subset: Vec<usize> = (0..n).filter(|&q| mask & (1 << q) != 0).collect();
        if subset.is_empty() {
            continue;
        }
        let sub = instance.restrict_to(&subset)?;
        let Ok(sol) = crate::exact::solve_exact(&sub) else {
            continue;
        };
        if sol.cost() > budget {
            continue;
        }
        let value: u64 = subset.iter().map(|&q| query_values[q]).sum();
        if value > best_value || (value == best_value && sol.cost() < best_cost) {
            best_value = value;
            best_cost = sol.cost();
        }
    }
    Ok((best_value, best_cost))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mc3_core::{Weights, WeightsBuilder};

    #[test]
    fn zero_budget_covers_nothing_costly() {
        let instance = Instance::new(vec![vec![0u32, 1]], Weights::uniform(3u64)).unwrap();
        let out = solve_partial_cover(&instance, &[10], Weight::ZERO).unwrap();
        assert!(out.covered_queries.is_empty());
        assert_eq!(out.covered_value, 0);
        assert_eq!(out.solution.cost(), Weight::ZERO);
    }

    #[test]
    fn prefers_high_value_per_cost() {
        // Two disjoint queries; budget only fits one. Query 1 has double
        // value at the same cost → covered first.
        let instance =
            Instance::new(vec![vec![0u32, 1], vec![2u32, 3]], Weights::uniform(5u64)).unwrap();
        let out = solve_partial_cover(&instance, &[10, 20], Weight::new(5)).unwrap();
        assert_eq!(out.covered_queries, vec![1]);
        assert_eq!(out.covered_value, 20);
        assert_eq!(out.budget_left, Weight::ZERO);
    }

    #[test]
    fn full_budget_covers_everything() {
        let instance =
            Instance::new(vec![vec![0u32, 1], vec![1u32, 2]], Weights::uniform(1u64)).unwrap();
        let out = solve_partial_cover(&instance, &[1, 1], Weight::new(100)).unwrap();
        assert_eq!(out.covered_queries, vec![0, 1]);
        assert_eq!(out.covered_value, 2);
        out.solution.verify(&instance).unwrap();
    }

    #[test]
    fn shared_classifiers_cascade_coverage() {
        // Covering the long query covers the short one for free.
        let w = WeightsBuilder::new()
            .classifier([0u32, 1], 2u64)
            .classifier([2u32], 1u64)
            .default_weight(Weight::new(50))
            .build();
        let instance = Instance::new(vec![vec![0u32, 1], vec![0u32, 1, 2]], w).unwrap();
        let out = solve_partial_cover(&instance, &[5, 5], Weight::new(3)).unwrap();
        assert_eq!(out.covered_queries, vec![0, 1]);
        assert_eq!(out.covered_value, 10);
    }

    #[test]
    fn knapsack_beats_greedy_on_adversarial_values() {
        // Greedy density favors query 0 (value 13 / cost 5 = 2.6/unit) but
        // after buying it only 3 budget remains; the optimal bundle is
        // queries 1+2 (values 10+10 at costs 4+4 = 8).
        let w = WeightsBuilder::new()
            .default_weight(Weight::new(50))
            .classifier([0u32, 1], 5u64)
            .classifier([2u32, 3], 4u64)
            .classifier([4u32, 5], 4u64)
            .build();
        let instance = Instance::new(vec![vec![0u32, 1], vec![2u32, 3], vec![4u32, 5]], w).unwrap();
        let values = [13u64, 10, 10];
        let budget = Weight::new(8);
        let greedy =
            solve_partial_cover_with(&instance, &values, budget, PartialStrategy::QueryGreedy)
                .unwrap();
        let knap = solve_partial_cover_with(
            &instance,
            &values,
            budget,
            PartialStrategy::ComponentKnapsack,
        )
        .unwrap();
        assert_eq!(knap.covered_value, 20);
        assert!(greedy.covered_value <= knap.covered_value);
        let best =
            solve_partial_cover_with(&instance, &values, budget, PartialStrategy::Best).unwrap();
        assert_eq!(best.covered_value, 20);
    }

    #[test]
    fn strategies_never_exceed_the_exact_optimum() {
        use mc3_core::rng::prelude::*;
        let mut rng = StdRng::seed_from_u64(0xBEEF);
        for round in 0..15 {
            let n = rng.gen_range(1..=5usize);
            let mut queries = Vec::new();
            for _ in 0..n {
                let len = rng.gen_range(1..=3usize);
                queries.push((0..len).map(|_| rng.gen_range(0..8u32)).collect::<Vec<_>>());
            }
            let instance = Instance::new(queries, Weights::seeded(round, 1, 9)).unwrap();
            let values: Vec<u64> = (0..instance.num_queries())
                .map(|_| rng.gen_range(1..20u64))
                .collect();
            let budget = Weight::new(rng.gen_range(0..30u64));
            let (opt_value, _) = solve_partial_exact(&instance, &values, budget).unwrap();
            for strategy in [
                PartialStrategy::QueryGreedy,
                PartialStrategy::ComponentKnapsack,
                PartialStrategy::Best,
            ] {
                let out = solve_partial_cover_with(&instance, &values, budget, strategy).unwrap();
                assert!(
                    out.covered_value <= opt_value,
                    "{strategy:?} claims {} > optimum {opt_value}",
                    out.covered_value
                );
                assert!(out.solution.cost() <= budget);
            }
        }
    }

    #[test]
    fn knapsack_exactness_on_disjoint_components() {
        // disjoint components + small budget: knapsack DP is exact
        let instance = Instance::new(
            vec![vec![0u32, 1], vec![2u32, 3], vec![4u32, 5], vec![6u32]],
            Weights::uniform(3u64),
        )
        .unwrap();
        let values = [7u64, 6, 5, 4];
        for budget in [0u64, 3, 6, 9, 12] {
            let (opt, _) = solve_partial_exact(&instance, &values, Weight::new(budget)).unwrap();
            let knap = solve_partial_cover_with(
                &instance,
                &values,
                Weight::new(budget),
                PartialStrategy::ComponentKnapsack,
            )
            .unwrap();
            assert_eq!(knap.covered_value, opt, "budget {budget}");
        }
    }

    #[test]
    fn partial_progress_is_not_counted() {
        // Budget covers half the query's properties — value must stay 0.
        let w = WeightsBuilder::new()
            .classifier([0u32], 1u64)
            .classifier([1u32], 10u64)
            .classifier([0u32, 1], 10u64)
            .build();
        let instance = Instance::new(vec![vec![0u32, 1]], w).unwrap();
        let out = solve_partial_cover(&instance, &[7], Weight::new(5)).unwrap();
        assert_eq!(out.covered_value, 0);
        assert!(out.covered_queries.is_empty());
        // and nothing was wastefully selected
        assert_eq!(out.solution.cost(), Weight::ZERO);
    }
}
