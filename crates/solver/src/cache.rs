//! Cross-request memoization of per-component solves.
//!
//! Observation 3.2 makes the connected component the unit of solver
//! work, and serving traffic replays structurally identical components
//! constantly (same workload generators, same seeds, shared catalog
//! shapes). [`SolveCache`] memoizes component solutions keyed by the
//! [`mc3_core::canon`] canonical fingerprint, so a repeated component
//! costs one canonicalization + hash lookup instead of a reduction and
//! a WSC solve.
//!
//! # Safety model
//!
//! A cache hit is never trusted blindly: the cached solution (stored in
//! *canonical* property ids) is remapped through the current
//! component's relabeling and then re-verified against the live
//! [`WorkState`] — every classifier must still exist, be usable, sum to
//! the cached cost, and the remapped masks must cover every residual
//! query (the mask-level equivalent of the `mc3-core::cover` check,
//! extended to partially covered queries). Any mismatch — a fingerprint
//! collision, an entry corrupted by a bug, a weight drift — degrades to
//! a miss and evicts the entry; the solver then solves the component
//! from scratch. A corrupted cache can cost time, never correctness.
//!
//! # Concurrency and accounting
//!
//! The cache is lock-striped into [`SHARDS`] shards selected by key
//! bits, so the parallel work-stealing component workers rarely
//! contend. Each shard owns its own LRU order and byte budget
//! (`capacity / SHARDS`); entry sizes are estimated from their set
//! payloads. All statistics live under the shard locks — no atomics —
//! and are summed on demand by [`SolveCache::stats`]. Hits, misses,
//! evictions and lookup latency are also reported through the
//! `mc3-telemetry` registry (`cache_hits`/`cache_misses`/
//! `cache_evictions`/`cache_lookup_ns`), which is what surfaces them as
//! `mc3_cache_*` Prometheus families in `mc3 serve`.

use crate::work::WorkState;
use mc3_core::canon::{self, Canonical, StableHasher};
use mc3_core::{u32_of, ClassifierId, FxHashMap, PropSet, Weight};
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

/// Number of lock stripes. A power of two so shard selection is a mask.
const SHARDS: usize = 16;

/// Fixed per-entry overhead estimate (map node, LRU node, `Entry`).
const ENTRY_OVERHEAD: usize = 112;

/// One memoized component solution, in canonical property ids.
#[derive(Debug, Clone)]
pub struct CachedSolve {
    /// The chosen classifiers, each a sorted set of canonical ids.
    pub sets: Vec<Vec<u32>>,
    /// Total weight of the solution when it was inserted (raw `Weight`).
    pub cost_raw: u64,
}

impl CachedSolve {
    fn bytes(&self) -> usize {
        ENTRY_OVERHEAD
            + self
                .sets
                .iter()
                .map(|s| std::mem::size_of::<Vec<u32>>() + 4 * s.len())
                .sum::<usize>()
    }
}

/// What the cache remembers about a component fingerprint: either a
/// verified solution, or the verdict that the component is uncoverable
/// (negative-result memoization — the ROADMAP's "infeasible verdicts
/// are work too" item). Negative entries ride the same LRU/byte
/// accounting as positive ones, at the fixed [`ENTRY_OVERHEAD`].
#[derive(Debug, Clone)]
pub enum CachedOutcome {
    /// A memoized solution (in canonical property ids).
    Solved(CachedSolve),
    /// The component had no finite-cost cover when it was inserted.
    Uncoverable,
}

impl CachedOutcome {
    fn bytes(&self) -> usize {
        match self {
            CachedOutcome::Solved(s) => s.bytes(),
            CachedOutcome::Uncoverable => ENTRY_OVERHEAD,
        }
    }
}

struct Entry {
    outcome: CachedOutcome,
    bytes: usize,
    tick: u64,
}

#[derive(Default)]
struct Shard {
    map: FxHashMap<u128, Entry>,
    /// LRU order: tick → key. Ticks are unique per shard.
    lru: BTreeMap<u64, u128>,
    bytes: usize,
    tick: u64,
    hits: u64,
    negative_hits: u64,
    misses: u64,
    evictions: u64,
    insertions: u64,
}

impl Shard {
    fn touch(&mut self, key: u128) {
        if let Some(e) = self.map.get_mut(&key) {
            self.lru.remove(&e.tick);
            self.tick += 1;
            e.tick = self.tick;
            self.lru.insert(self.tick, key);
        }
    }

    fn remove(&mut self, key: u128) {
        if let Some(e) = self.map.remove(&key) {
            self.lru.remove(&e.tick);
            self.bytes -= e.bytes;
        }
    }

    fn evict_to(&mut self, budget: usize) -> u64 {
        let mut evicted = 0;
        while self.bytes > budget {
            let Some((&tick, &key)) = self.lru.iter().next() else {
                break;
            };
            self.lru.remove(&tick);
            if let Some(e) = self.map.remove(&key) {
                self.bytes -= e.bytes;
            }
            evicted += 1;
        }
        self.evictions += evicted;
        evicted
    }
}

/// Aggregated statistics of a [`SolveCache`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache (after successful re-verification).
    pub hits: u64,
    /// Uncoverable verdicts replayed from the cache (after re-verifying
    /// that the component is still uncoverable).
    pub negative_hits: u64,
    /// Lookups that found nothing usable (including failed re-verifies).
    pub misses: u64,
    /// Entries evicted to stay under the byte budget.
    pub evictions: u64,
    /// Entries inserted over the cache's lifetime.
    pub insertions: u64,
    /// Live entries right now.
    pub entries: u64,
    /// Estimated resident bytes right now.
    pub resident_bytes: u64,
    /// Configured capacity in bytes.
    pub capacity_bytes: u64,
}

/// A lock-striped, byte-bounded, LRU-evicting memoization cache for
/// per-component solves, keyed by canonical fingerprint (mixed with a
/// solver-configuration digest, so e.g. `general` and `k2` results never
/// alias).
pub struct SolveCache {
    shards: Vec<Mutex<Shard>>,
    shard_budget: usize,
    capacity: usize,
}

impl std::fmt::Debug for SolveCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SolveCache")
            .field("capacity_bytes", &self.capacity)
            .field("shards", &self.shards.len())
            .finish()
    }
}

impl SolveCache {
    /// A cache bounded to (an estimate of) `bytes` resident bytes.
    pub fn with_capacity_bytes(bytes: usize) -> SolveCache {
        SolveCache {
            shards: (0..SHARDS).map(|_| Mutex::new(Shard::default())).collect(),
            shard_budget: (bytes / SHARDS).max(ENTRY_OVERHEAD),
            capacity: bytes,
        }
    }

    /// A cache bounded to `mb` megabytes.
    pub fn with_capacity_mb(mb: usize) -> SolveCache {
        Self::with_capacity_bytes(mb.saturating_mul(1024 * 1024))
    }

    fn shard(&self, key: u128) -> &Mutex<Shard> {
        &self.shards[(key as usize) & (SHARDS - 1)]
    }

    /// Looks up a candidate *solution* entry, refreshing its LRU
    /// position; negative entries answer `None` (use
    /// [`lookup_outcome`](Self::lookup_outcome) to see them). Does
    /// *not* count a hit — callers must re-verify the candidate first
    /// and then call [`confirm_hit`](Self::confirm_hit) or
    /// [`reject`](Self::reject).
    pub fn lookup(&self, key: u128) -> Option<CachedSolve> {
        match self.lookup_outcome(key) {
            Some(CachedOutcome::Solved(s)) => Some(s),
            _ => None,
        }
    }

    /// Looks up a candidate entry of either polarity, refreshing its
    /// LRU position. Like [`lookup`](Self::lookup), counts nothing —
    /// the caller re-verifies and then confirms or rejects.
    pub fn lookup_outcome(&self, key: u128) -> Option<CachedOutcome> {
        let mut shard = self.shard(key).lock().ok()?;
        shard.touch(key);
        shard.map.get(&key).map(|e| e.outcome.clone())
    }

    /// Whether an entry (of either polarity) exists for `key`, without
    /// touching its LRU position or any statistic. This is the
    /// scheduler's likely-hit probe: it must not perturb eviction order
    /// or hit accounting, because the actual consult follows moments
    /// later on a worker.
    pub fn contains(&self, key: u128) -> bool {
        self.shard(key)
            .lock()
            .is_ok_and(|shard| shard.map.contains_key(&key))
    }

    /// Records a verified hit.
    pub fn confirm_hit(&self, key: u128) {
        if let Ok(mut shard) = self.shard(key).lock() {
            shard.hits += 1;
        }
        mc3_telemetry::count(mc3_telemetry::Counter::CacheHits, 1);
    }

    /// Records a verified negative hit (a replayed uncoverable verdict).
    pub fn confirm_negative_hit(&self, key: u128) {
        if let Ok(mut shard) = self.shard(key).lock() {
            shard.negative_hits += 1;
        }
        mc3_telemetry::count(mc3_telemetry::Counter::CacheNegativeHits, 1);
    }

    /// Records a miss (no entry, or a candidate that failed verification).
    pub fn note_miss(&self, key: u128) {
        if let Ok(mut shard) = self.shard(key).lock() {
            shard.misses += 1;
        }
        mc3_telemetry::count(mc3_telemetry::Counter::CacheMisses, 1);
    }

    /// Drops an entry that failed re-verification (collision/corruption).
    pub fn reject(&self, key: u128) {
        if let Ok(mut shard) = self.shard(key).lock() {
            shard.remove(key);
        }
    }

    /// Inserts (or replaces) a solution entry, evicting LRU entries as
    /// needed to stay under the shard's byte budget. Entries larger than
    /// the budget are not admitted at all.
    pub fn insert(&self, key: u128, solve: CachedSolve) {
        self.insert_outcome(key, CachedOutcome::Solved(solve));
    }

    /// Memoizes an uncoverable verdict for `key`.
    pub fn insert_negative(&self, key: u128) {
        self.insert_outcome(key, CachedOutcome::Uncoverable);
    }

    fn insert_outcome(&self, key: u128, outcome: CachedOutcome) {
        let bytes = outcome.bytes();
        if bytes > self.shard_budget {
            return;
        }
        let evicted = {
            let Ok(mut shard) = self.shard(key).lock() else {
                return;
            };
            shard.remove(key);
            shard.tick += 1;
            let tick = shard.tick;
            shard.lru.insert(tick, key);
            shard.bytes += bytes;
            shard.insertions += 1;
            shard.map.insert(
                key,
                Entry {
                    outcome,
                    bytes,
                    tick,
                },
            );
            shard.evict_to(self.shard_budget)
        };
        if evicted > 0 {
            mc3_telemetry::count(mc3_telemetry::Counter::CacheEvictions, evicted);
        }
    }

    /// Sums per-shard statistics.
    pub fn stats(&self) -> CacheStats {
        let mut s = CacheStats {
            capacity_bytes: self.capacity as u64,
            ..CacheStats::default()
        };
        for shard in &self.shards {
            if let Ok(shard) = shard.lock() {
                s.hits += shard.hits;
                s.negative_hits += shard.negative_hits;
                s.misses += shard.misses;
                s.evictions += shard.evictions;
                s.insertions += shard.insertions;
                s.entries += shard.map.len() as u64;
                s.resident_bytes += shard.bytes as u64;
            }
        }
        s
    }
}

/// Mixes a component fingerprint with the solver-configuration digest
/// into the final cache key.
pub(crate) fn component_key(canonical: &Canonical, config_digest: u64) -> u128 {
    let mut h = StableHasher::new();
    h.write_u64(config_digest);
    h.write_u64((canonical.fingerprint() >> 64) as u64);
    h.write_u64(canonical.fingerprint() as u64);
    h.finish128()
}

fn write_str(h: &mut StableHasher, s: &str) {
    let bytes = s.as_bytes();
    h.write_u64(bytes.len() as u64);
    for chunk in bytes.chunks(8) {
        let mut word = [0u8; 8];
        word[..chunk.len()].copy_from_slice(chunk);
        h.write_u64(u64::from_le_bytes(word));
    }
}

/// A stable digest of every configuration knob that changes what a
/// component solve produces. Two configurations with different digests
/// never share cache entries.
pub(crate) fn config_digest(
    effective: crate::Algorithm,
    config: &crate::SolverConfig,
    kp: usize,
) -> u64 {
    let mut h = StableHasher::new();
    write_str(&mut h, effective.name());
    write_str(&mut h, &format!("{:?}", config.wsc_strategy));
    write_str(&mut h, &format!("{:?}", config.lp_limits));
    write_str(&mut h, &format!("{:?}", config.flow_algorithm));
    h.write_u64(u64::from(config.refine_wsc));
    h.write_u64(kp as u64);
    h.finish128() as u64
}

/// Canonicalizes one residual component of the working state: the
/// original queries with their covered masks, and the live weight
/// oracle (removed / absent → ∞, selected → 0).
pub(crate) fn component_canonical(
    ws: &WorkState<'_>,
    comp: &[usize],
    kp: usize,
) -> Option<Canonical> {
    let queries: Vec<(&mc3_core::Query, u32)> = comp
        .iter()
        .map(|&q| (&ws.instance.queries()[q], ws.covered[q]))
        .collect();
    canon::canonicalize(&queries, kp, canon::DEFAULT_BUDGET, |qi, mask| {
        let local = ws.universe.query_local(comp[qi]);
        let id = local.table[mask as usize];
        if id.is_none() || !ws.is_available(id) {
            Weight::INFINITE
        } else {
            ws.weight[id.index()]
        }
    })
}

/// Remaps a cached canonical solution back into the current component's
/// classifier ids and re-verifies it end to end. `None` = unusable
/// (treat as a miss).
pub(crate) fn remap_verified(
    ws: &WorkState<'_>,
    comp: &[usize],
    canonical: &Canonical,
    cached: &CachedSolve,
) -> Option<Vec<ClassifierId>> {
    let mut ids = Vec::with_capacity(cached.sets.len());
    let mut total = Weight::ZERO;
    for set in &cached.sets {
        let props: Option<Vec<mc3_core::PropId>> =
            set.iter().map(|&c| canonical.original_of(c)).collect();
        let ps = PropSet::from_ids(props?);
        let id = ws.universe.id_of(&ps)?;
        if !ws.is_usable(id) {
            return None;
        }
        total = total.saturating_add(ws.weight[id.index()]);
        ids.push(id);
    }
    if total.is_infinite() || total.raw() != cached.cost_raw {
        return None;
    }
    // Residual cover check: the union of the remapped classifiers' masks
    // must include every still-needed bit of every component query.
    let mut pos_of: FxHashMap<u32, usize> = FxHashMap::default();
    for (i, &q) in comp.iter().enumerate() {
        pos_of.insert(u32_of(q), i);
    }
    let mut union = vec![0u32; comp.len()];
    for &id in &ids {
        for (q, mask) in ws.occurrences(id) {
            if let Some(&i) = pos_of.get(&q) {
                union[i] |= mask;
            }
        }
    }
    for (i, &q) in comp.iter().enumerate() {
        let need = ws.need(q);
        if union[i] & need != need {
            return None;
        }
    }
    Some(ids)
}

/// Expresses a fresh component solution in canonical ids for insertion.
/// `None` when a classifier strays outside the canonicalized props
/// (cannot happen for component-local solves; checked defensively).
pub(crate) fn canonical_sets(
    ws: &WorkState<'_>,
    canonical: &Canonical,
    ids: &[ClassifierId],
) -> Option<CachedSolve> {
    let mut sets = Vec::with_capacity(ids.len());
    let mut total = Weight::ZERO;
    for &id in ids {
        let set: Option<Vec<u32>> = ws
            .universe
            .classifier(id)
            .iter()
            .map(|p| canonical.canonical_of(p))
            .collect();
        let mut set = set?;
        set.sort_unstable();
        sets.push(set);
        total = total.saturating_add(ws.weight[id.index()]);
    }
    if total.is_infinite() {
        return None;
    }
    sets.sort_unstable();
    Some(CachedSolve {
        sets,
        cost_raw: total.raw(),
    })
}

/// Re-verifies a cached *uncoverable* verdict against the live working
/// state: returns the first component query whose residual need cannot
/// be covered by the union of its usable subset classifiers, or `None`
/// when every query is (still) coverable. This check is exact, not
/// heuristic — per-query coverage only ever uses subsets of that query,
/// and preprocessing removals are optimality-preserving, so "some needed
/// bit of some query is reachable by no usable classifier" is precisely
/// the condition under which every solver path reports
/// [`Mc3Error::Uncoverable`](mc3_core::Mc3Error::Uncoverable). Like the
/// positive-path [`remap_verified`], this means a corrupted or colliding
/// negative entry can cost time, never correctness.
pub(crate) fn first_uncoverable_query(ws: &WorkState<'_>, comp: &[usize]) -> Option<usize> {
    for &q in comp {
        let need = ws.need(q);
        if need == 0 {
            continue;
        }
        let local = ws.universe.query_local(q);
        let mut union = 0u32;
        for (mask, &id) in local.table.iter().enumerate() {
            if !id.is_none() && ws.is_usable(id) {
                union |= u32_of(mask);
            }
        }
        if union & need != need {
            return Some(q);
        }
    }
    None
}

/// Everything the per-component loop needs to consult the cache.
pub(crate) struct CacheContext {
    pub cache: Arc<SolveCache>,
    pub digest: u64,
    pub kp: usize,
}

impl CacheContext {
    /// The full consult: canonicalize → lookup → remap + re-verify; on a
    /// miss, run `solve` and memoize its result. When canonicalization
    /// exhausts its budget the component is solved uncached and neither
    /// a hit nor a miss is recorded (the cache was never consulted).
    pub fn solve_component(
        &self,
        ws: &WorkState<'_>,
        comp: &[usize],
        solve: impl FnOnce() -> mc3_core::Result<Vec<ClassifierId>>,
    ) -> mc3_core::Result<Vec<ClassifierId>> {
        match component_canonical(ws, comp, self.kp) {
            Some(canonical) => self.solve_component_canonical(ws, comp, &canonical, solve),
            None => solve(),
        }
    }

    /// [`solve_component`](Self::solve_component) with the
    /// canonicalization already done — the cache-aware scheduler
    /// fingerprints every component up front to order dispatch, and
    /// this entry point lets the worker reuse that work instead of
    /// canonicalizing twice.
    pub fn solve_component_canonical(
        &self,
        ws: &WorkState<'_>,
        comp: &[usize],
        canonical: &Canonical,
        solve: impl FnOnce() -> mc3_core::Result<Vec<ClassifierId>>,
    ) -> mc3_core::Result<Vec<ClassifierId>> {
        let t0 = mc3_telemetry::monotonic_ns();
        let key = component_key(canonical, self.digest);
        match self.cache.lookup_outcome(key) {
            Some(CachedOutcome::Solved(cached)) => {
                if let Some(ids) = remap_verified(ws, comp, canonical, &cached) {
                    self.cache.confirm_hit(key);
                    mc3_telemetry::record(
                        mc3_telemetry::Hist::CacheLookupNs,
                        mc3_telemetry::monotonic_ns().saturating_sub(t0),
                    );
                    return Ok(ids);
                }
                // Collision or corruption: never trust it, never keep it.
                self.cache.reject(key);
            }
            Some(CachedOutcome::Uncoverable) => {
                if let Some(query_index) = first_uncoverable_query(ws, comp) {
                    self.cache.confirm_negative_hit(key);
                    mc3_telemetry::record(
                        mc3_telemetry::Hist::CacheLookupNs,
                        mc3_telemetry::monotonic_ns().saturating_sub(t0),
                    );
                    return Err(mc3_core::Mc3Error::Uncoverable { query_index });
                }
                // The verdict no longer holds here (collision, or a
                // different weight landscape): drop it and solve fresh.
                self.cache.reject(key);
            }
            None => {}
        }
        self.cache.note_miss(key);
        mc3_telemetry::record(
            mc3_telemetry::Hist::CacheLookupNs,
            mc3_telemetry::monotonic_ns().saturating_sub(t0),
        );
        match solve() {
            Ok(ids) => {
                if let Some(solve) = canonical_sets(ws, canonical, &ids) {
                    self.cache.insert(key, solve);
                }
                Ok(ids)
            }
            Err(e @ mc3_core::Mc3Error::Uncoverable { .. }) => {
                // Infeasibility is a solve result too: memoize the
                // verdict so the next structurally identical component
                // fails in one verified scan instead of a full solve.
                self.cache.insert_negative(key);
                Err(e)
            }
            Err(e) => Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(n: usize, fill: u32) -> CachedSolve {
        CachedSolve {
            sets: vec![vec![fill; n]],
            cost_raw: u64::from(fill),
        }
    }

    #[test]
    fn lookup_insert_roundtrip_and_stats() {
        let cache = SolveCache::with_capacity_mb(1);
        assert!(cache.lookup(7).is_none());
        cache.note_miss(7);
        cache.insert(7, entry(3, 9));
        let got = cache.lookup(7).expect("present");
        assert_eq!(got.sets, vec![vec![9, 9, 9]]);
        assert_eq!(got.cost_raw, 9);
        cache.confirm_hit(7);
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.entries), (1, 1, 1));
        assert_eq!(s.capacity_bytes, 1024 * 1024);
        assert!(s.resident_bytes > 0);
    }

    #[test]
    fn reject_drops_the_entry() {
        let cache = SolveCache::with_capacity_mb(1);
        cache.insert(5, entry(2, 1));
        assert!(cache.lookup(5).is_some());
        cache.reject(5);
        assert!(cache.lookup(5).is_none());
        assert_eq!(cache.stats().entries, 0);
    }

    #[test]
    fn byte_budget_evicts_lru_first() {
        // Budget fits ~2 entries per shard; keys 0, 16, 32 share shard 0.
        let cache = SolveCache::with_capacity_bytes(SHARDS * (2 * ENTRY_OVERHEAD + 64));
        cache.insert(0, entry(1, 1));
        cache.insert(16, entry(1, 2));
        // Touch key 0 so key 16 is the LRU victim.
        assert!(cache.lookup(0).is_some());
        cache.insert(32, entry(1, 3));
        assert!(cache.lookup(16).is_none(), "LRU entry evicted");
        assert!(cache.lookup(0).is_some());
        assert!(cache.lookup(32).is_some());
        assert!(cache.stats().evictions >= 1);
    }

    #[test]
    fn oversized_entries_are_not_admitted() {
        let cache = SolveCache::with_capacity_bytes(SHARDS * ENTRY_OVERHEAD);
        cache.insert(3, entry(100_000, 1));
        assert!(cache.lookup(3).is_none());
        assert_eq!(cache.stats().insertions, 0);
    }

    #[test]
    fn negative_entries_roundtrip_and_hide_from_positive_lookup() {
        let cache = SolveCache::with_capacity_mb(1);
        cache.insert_negative(11);
        assert!(cache.lookup(11).is_none(), "not a solution entry");
        assert!(matches!(
            cache.lookup_outcome(11),
            Some(CachedOutcome::Uncoverable)
        ));
        assert!(cache.contains(11));
        cache.confirm_negative_hit(11);
        let s = cache.stats();
        assert_eq!((s.negative_hits, s.entries, s.insertions), (1, 1, 1));
        cache.reject(11);
        assert!(!cache.contains(11));
    }

    #[test]
    fn contains_probe_does_not_perturb_lru_order() {
        // Budget fits ~2 entries per shard; keys 0, 16, 32 share shard 0.
        let cache = SolveCache::with_capacity_bytes(SHARDS * (2 * ENTRY_OVERHEAD + 64));
        cache.insert(0, entry(1, 1));
        cache.insert(16, entry(1, 2));
        // A lookup would promote key 0; the scheduler probe must not.
        assert!(cache.contains(0));
        cache.insert(32, entry(1, 3));
        assert!(cache.lookup(0).is_none(), "key 0 stayed the LRU victim");
        assert!(cache.lookup(16).is_some());
    }

    #[test]
    fn replacing_an_entry_does_not_leak_bytes() {
        let cache = SolveCache::with_capacity_mb(1);
        cache.insert(9, entry(50, 1));
        let before = cache.stats().resident_bytes;
        cache.insert(9, entry(50, 2));
        assert_eq!(cache.stats().resident_bytes, before);
        assert_eq!(cache.stats().entries, 1);
        assert_eq!(cache.lookup(9).map(|e| e.cost_raw), Some(2));
    }
}
