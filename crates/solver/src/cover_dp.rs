//! Per-query minimum-cost cover via dynamic programming over local bitmasks.
//!
//! For one query, the cheapest set of usable classifiers whose union
//! contains a needed mask is an exact set-cover DP: `f(u) = min over usable
//! classifiers c containing the lowest bit of u of  w(c) + f(u \ c)`.
//! With query length `ℓ ≤ 16` this is `O(2^ℓ · m_q)` — the "O(1) cover
//! options for constant k" the paper's Local-Greedy baseline inspects per
//! query (§6.1).

use crate::work::WorkState;
use mc3_core::u32_of;
use mc3_core::{ClassifierId, Weight};

/// The cheapest cover of query `q`'s still-needed properties, using current
/// weights (selected classifiers cost 0). Returns `(cost, classifiers)`;
/// `None` if no finite cover exists. A fully covered query yields
/// `(0, [])`.
pub fn min_cover(ws: &WorkState<'_>, q: usize) -> Option<(Weight, Vec<ClassifierId>)> {
    let need = ws.need(q);
    if need == 0 {
        return Some((Weight::ZERO, Vec::new()));
    }
    let local = ws.universe.query_local(q);
    let len = local.len;
    let size = 1usize << len;

    // usable classifier masks grouped by their lowest *needed* relevance:
    // we branch on the lowest set bit of the residual, so group by bit.
    let mut by_bit: Vec<Vec<u32>> = vec![Vec::new(); len];
    for mask in 1..u32_of(size) {
        let id = local.table[mask as usize];
        if id.is_none() || !ws.is_usable(id) {
            continue;
        }
        let mut bits = mask & need;
        while bits != 0 {
            let b = bits.trailing_zeros() as usize;
            bits &= bits - 1;
            by_bit[b].push(mask);
        }
    }

    // dp over residual-need masks, ascending (u \ c < u numerically)
    let mut dp = vec![Weight::INFINITE; size];
    let mut choice = vec![0u32; size];
    dp[0] = Weight::ZERO;
    for u in 1..u32_of(size) {
        if u & need != u {
            continue; // only residuals of the needed mask arise
        }
        let b = u.trailing_zeros() as usize;
        let mut best = Weight::INFINITE;
        let mut best_mask = 0u32;
        for &m in &by_bit[b] {
            let rest = u & !m;
            let sub = dp[rest as usize];
            if sub.is_infinite() {
                continue;
            }
            let id = local.table[m as usize];
            let total = ws.weight[id.index()].saturating_add(sub);
            if total < best {
                best = total;
                best_mask = m;
            }
        }
        dp[u as usize] = best;
        choice[u as usize] = best_mask;
    }

    let full = need;
    if dp[full as usize].is_infinite() {
        return None;
    }
    let mut ids = Vec::new();
    let mut u = full;
    while u != 0 {
        let m = choice[u as usize];
        debug_assert_ne!(m, 0);
        ids.push(local.table[m as usize]);
        u &= !m;
    }
    ids.sort_unstable();
    ids.dedup();
    Some((dp[full as usize], ids))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::work::WorkState;
    use mc3_core::{ClassifierUniverse, Instance, PropSet, Weights, WeightsBuilder};

    fn ws_for(instance: &Instance) -> WorkState<'_> {
        let u = ClassifierUniverse::build(instance);
        WorkState::new(instance, u)
    }

    #[test]
    fn picks_cheapest_partition() {
        let w = WeightsBuilder::new()
            .classifier([0u32], 2u64)
            .classifier([1u32], 2u64)
            .classifier([2u32], 2u64)
            .classifier([0u32, 1], 3u64)
            .classifier([0u32, 2], 9u64)
            .classifier([1u32, 2], 9u64)
            .classifier([0u32, 1, 2], 9u64)
            .build();
        let instance = Instance::new(vec![vec![0u32, 1, 2]], w).unwrap();
        let ws = ws_for(&instance);
        let (cost, ids) = min_cover(&ws, 0).unwrap();
        assert_eq!(cost, mc3_core::Weight::new(5)); // XY + Z
        assert_eq!(ids.len(), 2);
    }

    #[test]
    fn overlapping_covers_allowed() {
        // {x,y,z}: XY(1) + YZ(1) = 2 beats XYZ(3) and singletons (9 each)
        let w = WeightsBuilder::new()
            .classifier([0u32], 9u64)
            .classifier([1u32], 9u64)
            .classifier([2u32], 9u64)
            .classifier([0u32, 1], 1u64)
            .classifier([1u32, 2], 1u64)
            .classifier([0u32, 2], 9u64)
            .classifier([0u32, 1, 2], 3u64)
            .build();
        let instance = Instance::new(vec![vec![0u32, 1, 2]], w).unwrap();
        let ws = ws_for(&instance);
        let (cost, ids) = min_cover(&ws, 0).unwrap();
        assert_eq!(cost, mc3_core::Weight::new(2));
        assert_eq!(ids.len(), 2);
    }

    #[test]
    fn respects_partial_coverage_and_free_selected() {
        let instance = Instance::new(vec![vec![0u32, 1]], Weights::uniform(5u64)).unwrap();
        let mut ws = ws_for(&instance);
        let x = ws.universe.id_of(&PropSet::from_ids([0u32])).unwrap();
        ws.select(x);
        let (cost, ids) = min_cover(&ws, 0).unwrap();
        // need = {y}; XY and Y both cost 5 — either is fine
        assert_eq!(cost, mc3_core::Weight::new(5));
        assert_eq!(ids.len(), 1);
    }

    #[test]
    fn fully_covered_query_is_free() {
        let instance = Instance::new(vec![vec![0u32, 1]], Weights::uniform(5u64)).unwrap();
        let mut ws = ws_for(&instance);
        let xy = ws.universe.id_of(&PropSet::from_ids([0u32, 1])).unwrap();
        ws.select(xy);
        assert_eq!(min_cover(&ws, 0), Some((mc3_core::Weight::ZERO, vec![])));
    }

    #[test]
    fn uncoverable_returns_none() {
        let w = WeightsBuilder::new().classifier([0u32], 1u64).build();
        let instance = Instance::new(vec![vec![0u32, 1]], w).unwrap();
        let ws = ws_for(&instance);
        assert_eq!(min_cover(&ws, 0), None);
    }

    #[test]
    fn matches_exact_on_random_queries() {
        use mc3_core::rng::prelude::*;
        let mut rng = StdRng::seed_from_u64(808);
        for round in 0..40 {
            let len = rng.gen_range(1..=5usize);
            let props: Vec<u32> = (0..len as u32).collect();
            let instance = Instance::new(vec![props], Weights::seeded(round, 1, 9)).unwrap();
            let ws = ws_for(&instance);
            let (cost, ids) = min_cover(&ws, 0).unwrap();
            // cross-check with the exact solver on this single query
            let exact = crate::exact::solve_exact_with(
                &instance,
                &crate::preprocess::PreprocessOptions::disabled(),
            )
            .unwrap();
            assert_eq!(cost, exact.cost(), "round {round}");
            // and the reported classifiers actually cover
            let sol = mc3_core::Solution::from_ids(&ws.universe, ids);
            sol.verify(&instance).unwrap();
        }
    }
}
