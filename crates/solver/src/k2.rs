//! The exact PTIME solver for `k ≤ 2` — Algorithm 2 of the paper (§4).
//!
//! The residual problem is reduced to Weighted Vertex Cover over a bipartite
//! graph: the left side holds singleton classifiers, the right side holds
//! length-2 classifiers, and each query `xy` contributes one edge per still
//! needed property — `(X, XY)` for `x` and `(Y, XY)` for `y`. A vertex cover
//! must, per query, either take `XY` or take every needed singleton, which
//! is exactly the covering condition; minimality transfers both ways
//! (Theorem 4.1). The WVC instance is solved exactly via Dinic max-flow
//! (Theorem 2.3, `mc3-flow`).

use crate::work::WorkState;
use mc3_core::u32_of;
use mc3_core::{ClassifierId, FxHashMap, Mc3Error, Result, Weight};
use mc3_flow::{solve_bipartite_wvc_with, BipartiteWvc, FlowAlgorithm};

/// Solves the residual problem restricted to `queries` (each of length ≤ 2)
/// exactly; returns the classifier ids to add to the solution.
///
/// Singleton queries that survived preprocessing (e.g. when preprocessing is
/// disabled) are handled by directly selecting their singleton classifier.
pub fn solve_k2(ws: &WorkState<'_>, queries: &[usize]) -> Result<Vec<ClassifierId>> {
    solve_k2_with(ws, queries, FlowAlgorithm::Dinic)
}

/// [`solve_k2`] with an explicit max-flow algorithm (the paper compared
/// several before picking Dinic; see `mc3_flow::FlowAlgorithm`).
pub fn solve_k2_with(
    ws: &WorkState<'_>,
    queries: &[usize],
    flow: FlowAlgorithm,
) -> Result<Vec<ClassifierId>> {
    let _span = mc3_telemetry::span("k2.solve");
    mc3_telemetry::span_add(mc3_telemetry::Counter::DispatchK2, 1);
    let mut picked: Vec<ClassifierId> = Vec::new();

    // Singleton queries force their classifier (Observation 3.1). When
    // preprocessing is disabled these survive into the solver, and the VC
    // graph must see the forced classifiers as free (and the properties
    // they test as covered) or optimality is lost — a pair query sharing
    // the property would otherwise pay for it twice.
    let mut forced: mc3_core::FxHashSet<u32> = mc3_core::FxHashSet::default();
    for &q in queries {
        if ws.need(q) == 0 {
            continue;
        }
        let local = ws.universe.query_local(q);
        if local.len == 1 {
            let id = local.table[1];
            if !ws.is_usable(id) {
                return Err(Mc3Error::Uncoverable { query_index: q });
            }
            forced.insert(id.0);
            picked.push(id);
        }
    }
    let weight_of = |id: ClassifierId| -> Weight {
        if forced.contains(&id.0) {
            Weight::ZERO
        } else if ws.is_available(id) {
            ws.weight[id.index()]
        } else {
            Weight::INFINITE
        }
    };
    // node registries keyed by classifier id
    let mut left_slot: FxHashMap<u32, u32> = FxHashMap::default();
    let mut left_ids: Vec<ClassifierId> = Vec::new();
    let mut left_weights: Vec<Weight> = Vec::new();
    let mut right_slot: FxHashMap<u32, u32> = FxHashMap::default();
    let mut right_ids: Vec<ClassifierId> = Vec::new();
    let mut right_weights: Vec<Weight> = Vec::new();
    let mut edges: Vec<(u32, u32)> = Vec::new();
    let mut edge_query: Vec<usize> = Vec::new();

    for &q in queries {
        let need = ws.need(q);
        if need == 0 {
            continue;
        }
        let local = ws.universe.query_local(q);
        match local.len {
            1 => {} // already handled in the forced pass
            2 => {
                let pair = local.table[0b11];
                let r = *right_slot.entry(pair.0).or_insert_with(|| {
                    let slot = u32_of(right_ids.len());
                    right_ids.push(pair);
                    right_weights.push(weight_of(pair));
                    slot
                });
                let mut bits = need;
                while bits != 0 {
                    let b = bits.trailing_zeros();
                    bits &= bits - 1;
                    let single = local.table[1 << b];
                    if forced.contains(&single.0) {
                        continue; // property already covered by a forced pick
                    }
                    let l = *left_slot.entry(single.0).or_insert_with(|| {
                        let slot = u32_of(left_ids.len());
                        left_ids.push(single);
                        left_weights.push(weight_of(single));
                        slot
                    });
                    edges.push((l, r));
                    edge_query.push(q);
                }
            }
            len => {
                return Err(Mc3Error::Internal(format!(
                    "k2 solver received a query of length {len}"
                )))
            }
        }
    }

    if !edges.is_empty() {
        let inst = BipartiteWvc {
            left_weights,
            right_weights,
            edges,
        };
        let sol = solve_bipartite_wvc_with(&inst, flow).map_err(|e| match e {
            // translate edge index back to the query it came from
            Mc3Error::Uncoverable { query_index } => Mc3Error::Uncoverable {
                query_index: edge_query[query_index],
            },
            other => other,
        })?;
        for (i, &in_cover) in sol.in_cover_left.iter().enumerate() {
            if in_cover {
                picked.push(left_ids[i]);
            }
        }
        for (j, &in_cover) in sol.in_cover_right.iter().enumerate() {
            if in_cover {
                picked.push(right_ids[j]);
            }
        }
    }

    picked.sort_unstable();
    picked.dedup();
    // Certificate (verify feature): the pick must cover every residual
    // need, and — since Algorithm 2 is exact (Theorem 4.1) — its cost must
    // land inside the per-query [max min-cover, Σ min-cover] bracket.
    #[cfg(feature = "verify")]
    {
        let _vspan = mc3_telemetry::span("verify.exact_bracket");
        crate::verify::assert_exact_certificate(ws, queries, &picked);
        mc3_telemetry::span_add(mc3_telemetry::Counter::VerifyExactBracketChecks, 1);
    }
    Ok(picked)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mc3_core::{ClassifierUniverse, Instance, PropSet, Weights, WeightsBuilder};

    fn ws_for(instance: &Instance) -> WorkState<'_> {
        let u = ClassifierUniverse::build(instance);
        WorkState::new(instance, u)
    }

    fn cost_of(ws: &WorkState<'_>, ids: &[ClassifierId]) -> u64 {
        ids.iter().map(|&c| ws.universe.weight(c).raw()).sum()
    }

    #[test]
    fn single_query_picks_cheapest_of_pair_or_singletons() {
        // W(X)=2, W(Y)=2, W(XY)=3 → XY wins
        let w = WeightsBuilder::new()
            .classifier([0u32], 2u64)
            .classifier([1u32], 2u64)
            .classifier([0u32, 1], 3u64)
            .build();
        let instance = Instance::new(vec![vec![0u32, 1]], w).unwrap();
        let ws = ws_for(&instance);
        let ids = solve_k2(&ws, &[0]).unwrap();
        assert_eq!(cost_of(&ws, &ids), 3);
        let xy = ws.universe.id_of(&PropSet::from_ids([0u32, 1])).unwrap();
        assert_eq!(ids, vec![xy]);
    }

    #[test]
    fn shared_singleton_amortizes() {
        // Queries {x,y}, {x,z}: W(X)=1 and everything else 5 → X + Y + Z = 11
        // vs XY + XZ = 10 vs X,Y / XZ mixes; optimal = X(1)+Y(5)+Z(5) = 11?
        // XY(5)+XZ(5) = 10 is cheaper → WVC should find 10.
        let w = WeightsBuilder::new()
            .classifier([0u32], 1u64)
            .classifier([1u32], 5u64)
            .classifier([2u32], 5u64)
            .classifier([0u32, 1], 5u64)
            .classifier([0u32, 2], 5u64)
            .build();
        let instance = Instance::new(vec![vec![0u32, 1], vec![0u32, 2]], w).unwrap();
        let ws = ws_for(&instance);
        let ids = solve_k2(&ws, &[0, 1]).unwrap();
        assert_eq!(cost_of(&ws, &ids), 10);
    }

    #[test]
    fn cheap_shared_singleton_wins() {
        // Same topology, but pairs expensive: X(1) + Y(2) + Z(2) = 5 < pairs
        let w = WeightsBuilder::new()
            .classifier([0u32], 1u64)
            .classifier([1u32], 2u64)
            .classifier([2u32], 2u64)
            .classifier([0u32, 1], 4u64)
            .classifier([0u32, 2], 4u64)
            .build();
        let instance = Instance::new(vec![vec![0u32, 1], vec![0u32, 2]], w).unwrap();
        let ws = ws_for(&instance);
        let ids = solve_k2(&ws, &[0, 1]).unwrap();
        assert_eq!(cost_of(&ws, &ids), 5);
        assert_eq!(ids.len(), 3);
    }

    #[test]
    fn singleton_queries_handled_without_preprocessing() {
        let instance = Instance::new(vec![vec![7u32]], Weights::uniform(4u64)).unwrap();
        let ws = ws_for(&instance);
        let ids = solve_k2(&ws, &[0]).unwrap();
        assert_eq!(ids.len(), 1);
        assert_eq!(cost_of(&ws, &ids), 4);
    }

    #[test]
    fn partially_covered_query_needs_one_edge() {
        let w = WeightsBuilder::new()
            .classifier([0u32], 1u64)
            .classifier([1u32], 9u64)
            .classifier([0u32, 1], 3u64)
            .build();
        let instance = Instance::new(vec![vec![0u32, 1]], w).unwrap();
        let mut ws = ws_for(&instance);
        let x = ws.universe.id_of(&PropSet::from_ids([0u32])).unwrap();
        ws.select(x); // covers x; query still needs y
        let alive = ws.alive_query_indices();
        let ids = solve_k2(&ws, &alive).unwrap();
        // y coverable by Y (9) or XY (3) → XY
        assert_eq!(cost_of(&ws, &ids), 3);
    }

    #[test]
    fn infinite_options_force_the_other_side() {
        // Y missing (infinite) → must take XY even though X+Y would be "cheap"
        let w = WeightsBuilder::new()
            .classifier([0u32], 1u64)
            .classifier([0u32, 1], 50u64)
            .build();
        let instance = Instance::new(vec![vec![0u32, 1]], w).unwrap();
        let ws = ws_for(&instance);
        let ids = solve_k2(&ws, &[0]).unwrap();
        assert_eq!(cost_of(&ws, &ids), 50);
    }

    #[test]
    fn uncoverable_query_reports_index() {
        let w = WeightsBuilder::new().classifier([0u32], 1u64).build();
        let instance = Instance::new(vec![vec![0u32], vec![1u32, 2]], w).unwrap();
        let ws = ws_for(&instance);
        let err = solve_k2(&ws, &[0, 1]).unwrap_err();
        assert_eq!(err, Mc3Error::Uncoverable { query_index: 1 });
    }

    #[test]
    fn rejects_long_queries() {
        let instance = Instance::new(vec![vec![0u32, 1, 2]], Weights::uniform(1u64)).unwrap();
        let ws = ws_for(&instance);
        assert!(matches!(solve_k2(&ws, &[0]), Err(Mc3Error::Internal(_))));
    }

    #[test]
    fn covered_queries_are_skipped() {
        let instance = Instance::new(vec![vec![0u32, 1]], Weights::uniform(2u64)).unwrap();
        let mut ws = ws_for(&instance);
        let xy = ws.universe.id_of(&PropSet::from_ids([0u32, 1])).unwrap();
        ws.select(xy);
        let ids = solve_k2(&ws, &[0]).unwrap();
        assert!(ids.is_empty());
    }
}
