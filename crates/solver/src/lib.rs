#![warn(missing_docs)]

//! MC³ solvers — the algorithmic heart of the reproduction.
//!
//! * [`preprocess`] — Algorithm 1, the four-step optimality-preserving
//!   pruning pipeline (§3);
//! * [`components`] — Step 2's decomposition into property-connected
//!   sub-problems (Observation 3.2);
//! * [`k2`] — Algorithm 2, the exact PTIME solver for `k ≤ 2` via bipartite
//!   Weighted Vertex Cover and max-flow (§4);
//! * [`general`] — Algorithm 3, the `min{ln I + ln(k−1) + 1, 2^(k−1)}`
//!   approximation via the WSC reduction (§5.2);
//! * [`solver`] — the [`Mc3Solver`] facade tying everything together,
//!   including **Short-First** (§4, "Almost k = 2");
//! * [`baselines`] — Property-Oriented, Query-Oriented, Mixed \[13\] and
//!   Local-Greedy (§6.1);
//! * [`cache`] — cross-request memoization of per-component solves,
//!   keyed by `mc3-core::canon` canonical fingerprints;
//! * [`executor`] — the process-wide work-stealing pool parallel solves
//!   run on (one fixed worker set shared by all concurrent solves);
//! * [`exact`] — an exponential-time exact reference solver;
//! * [`partial`] — the budgeted partial-cover future-work variant (§5.3);
//! * [`multivalued_ext`] — mixed binary + multi-valued classifiers (§5.3).

pub mod baselines;
pub mod cache;
pub mod components;
pub mod cover_dp;
pub mod exact;
pub mod executor;
pub mod general;
pub mod hardness;
pub mod k2;
pub mod multivalued_ext;
pub mod partial;
pub mod preprocess;
pub mod reduction;
pub mod solver;
#[cfg(feature = "verify")]
pub mod verify;
pub mod work;

pub use cache::{CacheStats, CachedOutcome, CachedSolve, SolveCache};
pub use exact::solve_exact;
pub use general::{LpLimits, WscStrategy};
pub use mc3_flow::FlowAlgorithm;
pub use multivalued_ext::{solve_with_multivalued, MixedPick, MixedSolution};
pub use partial::{
    solve_partial_cover, solve_partial_cover_with, solve_partial_exact, PartialCoverOutcome,
    PartialStrategy,
};
pub use preprocess::{PreprocessOptions, PreprocessStats};
pub use reduction::{reduce_to_wsc, reduce_to_wsc_with, ReductionScratch, WscReduction};
pub use solver::{Algorithm, Mc3Solver, SolveTimings, SolverConfig, SolverReport};
