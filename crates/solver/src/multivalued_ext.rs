//! Mixed binary + multi-valued classifier solving (§5.3).
//!
//! A multi-valued classifier decides the value of an attribute, so it acts
//! as a binary classifier for *every* property of that attribute. The
//! paper's extension of the WSC reduction adds one set per multi-valued
//! classifier, covering every element whose property belongs to the
//! attribute; the analysis then proceeds exactly as in the binary case.
//!
//! Preprocessing is not applied in this mode: Algorithm 1's forced-selection
//! rule assumes binary classifiers are the only way to cover a property,
//! which no longer holds once multi-valued classifiers exist.

use crate::reduction::reduce_to_wsc;
use crate::work::WorkState;
use mc3_core::u32_of;
use mc3_core::{
    AttributeSchema, Classifier, ClassifierUniverse, Instance, Mc3Error, MultiValuedClassifier,
    Result, Weight,
};
use mc3_setcover::{prune_redundant, solve_greedy, solve_primal_dual};

/// One selected trainable unit in the mixed setting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MixedPick {
    /// An ordinary conjunction classifier.
    Binary(Classifier),
    /// A multi-valued classifier deciding the attribute (reported by its
    /// index into the input `multi_valued` slice).
    MultiValued(usize),
}

/// A solution over binary and multi-valued classifiers.
#[derive(Debug, Clone)]
pub struct MixedSolution {
    /// The selected units.
    pub picks: Vec<MixedPick>,
    /// Total construction cost.
    pub cost: Weight,
}

impl MixedSolution {
    /// Whether the picks cover every query: a query is covered when each of
    /// its properties is covered by a selected binary classifier fitting
    /// the query or by a selected multi-valued classifier of its attribute.
    pub fn covers(
        &self,
        instance: &Instance,
        schema: &AttributeSchema,
        multi_valued: &[MultiValuedClassifier],
    ) -> bool {
        instance.queries().iter().all(|q| {
            let mut covered = vec![false; q.len()];
            for pick in &self.picks {
                match pick {
                    MixedPick::Binary(c) => {
                        if c.is_subset_of(q) {
                            for (i, p) in q.iter().enumerate() {
                                if c.contains(p) {
                                    covered[i] = true;
                                }
                            }
                        }
                    }
                    MixedPick::MultiValued(mi) => {
                        let attr = multi_valued[*mi].attribute;
                        for (i, p) in q.iter().enumerate() {
                            if schema.attribute_of(p) == Some(attr) {
                                covered[i] = true;
                            }
                        }
                    }
                }
            }
            covered.into_iter().all(|c| c)
        })
    }
}

/// Solves the mixed setting with the extended WSC reduction, running greedy
/// and primal–dual and keeping the cheaper cover.
pub fn solve_with_multivalued(
    instance: &Instance,
    schema: &AttributeSchema,
    multi_valued: &[MultiValuedClassifier],
) -> Result<MixedSolution> {
    for (i, mv) in multi_valued.iter().enumerate() {
        if mv.cost.is_infinite() {
            return Err(Mc3Error::Internal(format!(
                "multi-valued classifier #{i} has infinite cost; omit it instead"
            )));
        }
    }

    let universe = ClassifierUniverse::build(instance);
    let ws = WorkState::new(instance, universe);
    let queries: Vec<usize> = (0..instance.num_queries()).collect();
    let red = reduce_to_wsc(&ws, &queries);

    // Extend with one set per multi-valued classifier.
    let mut sets: Vec<(Vec<u32>, Weight)> = (0..red.instance.num_sets())
        .map(|s| (red.instance.set(s).to_vec(), red.instance.cost(s)))
        .collect();
    let binary_sets = sets.len();
    for mv in multi_valued {
        let elements: Vec<u32> = red
            .element_origin
            .iter()
            .enumerate()
            .filter(|&(_, &(q, bit))| {
                let prop = instance.queries()[q as usize].ids()[bit as usize];
                schema.attribute_of(prop) == Some(mv.attribute)
            })
            .map(|(e, _)| u32_of(e))
            .collect();
        sets.push((elements, mv.cost));
    }

    let extended = mc3_setcover::SetCoverInstance::new(red.instance.num_elements(), sets);
    extended.ensure_coverable().map_err(|e| {
        if let Mc3Error::Uncoverable { query_index } = e {
            Mc3Error::Uncoverable {
                query_index: red.element_origin[query_index].0 as usize,
            }
        } else {
            e
        }
    })?;

    let greedy = prune_redundant(&extended, &solve_greedy(&extended)?);
    let dual = prune_redundant(&extended, &solve_primal_dual(&extended)?);
    let best = if dual.cost < greedy.cost {
        dual
    } else {
        greedy
    };

    let picks = best
        .selected
        .iter()
        .map(|&s| {
            if s < binary_sets {
                MixedPick::Binary(ws.universe.classifier(red.set_to_classifier[s]).clone())
            } else {
                MixedPick::MultiValued(s - binary_sets)
            }
        })
        .collect();
    Ok(MixedSolution {
        picks,
        cost: best.cost,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mc3_core::{PropId, Weights};

    /// Soccer-shirt style setup: two team properties under one attribute.
    fn setup() -> (Instance, AttributeSchema) {
        // props: 0 = team=Juventus, 1 = team=Chelsea, 2 = brand=Adidas
        let instance =
            Instance::new(vec![vec![0u32, 2], vec![1u32, 2]], Weights::uniform(10u64)).unwrap();
        let mut schema = AttributeSchema::new();
        let team = schema.attribute("team");
        schema.assign(PropId(0), team).assign(PropId(1), team);
        (instance, schema)
    }

    #[test]
    fn cheap_multivalued_classifier_replaces_binaries() {
        let (instance, schema) = setup();
        let team = schema.attribute_of(PropId(0)).unwrap();
        let mv = vec![MultiValuedClassifier {
            attribute: team,
            cost: Weight::new(5),
        }];
        let sol = solve_with_multivalued(&instance, &schema, &mv).unwrap();
        assert!(sol.covers(&instance, &schema, &mv));
        // T (5) + A (10) = 15 beats any all-binary cover (≥ 20)
        assert_eq!(sol.cost, Weight::new(15));
        assert!(sol.picks.contains(&MixedPick::MultiValued(0)));
    }

    #[test]
    fn expensive_multivalued_classifier_is_ignored() {
        let (instance, schema) = setup();
        let team = schema.attribute_of(PropId(0)).unwrap();
        let mv = vec![MultiValuedClassifier {
            attribute: team,
            cost: Weight::new(500),
        }];
        let sol = solve_with_multivalued(&instance, &schema, &mv).unwrap();
        assert!(sol.covers(&instance, &schema, &mv));
        // optimum is 20 (two pair classifiers); the approximation may pick
        // the A+J+C cover (30) but must never touch the 500-cost MV set
        assert!(sol.cost <= Weight::new(30));
        assert!(!sol.picks.contains(&MixedPick::MultiValued(0)));
    }

    #[test]
    fn no_multivalued_classifiers_degenerates_to_binary() {
        let (instance, schema) = setup();
        let sol = solve_with_multivalued(&instance, &schema, &[]).unwrap();
        assert!(sol.covers(&instance, &schema, &[]));
        assert!(sol.picks.iter().all(|p| matches!(p, MixedPick::Binary(_))));
    }

    #[test]
    fn infinite_mv_cost_is_rejected() {
        let (instance, schema) = setup();
        let team = schema.attribute_of(PropId(0)).unwrap();
        let mv = vec![MultiValuedClassifier {
            attribute: team,
            cost: Weight::INFINITE,
        }];
        assert!(solve_with_multivalued(&instance, &schema, &mv).is_err());
    }
}
