//! The general MC³ approximation solver — Algorithm 3 of the paper (§5.2).
//!
//! Reduce the residual problem to Weighted Set Cover, run the greedy
//! algorithm *and* an `f`-approximation (LP rounding on small instances, the
//! primal–dual algorithm — identical guarantee — beyond a size threshold),
//! and keep the cheaper output. Theorem 5.3: the combination is a
//! `min{ln I + ln(k−1) + 1, 2^(k−1)}`-approximation.

use crate::reduction::{reduce_to_wsc_with, ReductionScratch};
use crate::work::WorkState;
use mc3_core::{ClassifierId, Result};
use mc3_setcover::{
    local_search, prune_redundant, solve_greedy, solve_lp_rounding, solve_primal_dual,
    SetCoverSolution,
};

/// Which WSC algorithms Algorithm 3 runs on the reduced instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WscStrategy {
    /// Greedy + `f`-approximation, keep the cheaper (the paper's choice).
    Combined,
    /// Greedy only (`ln Δ + 1` guarantee).
    GreedyOnly,
    /// Primal–dual only (`f` guarantee).
    PrimalDualOnly,
    /// LP rounding only (`f` guarantee; dense simplex — small instances).
    LpRoundingOnly,
}

/// Size thresholds above which [`WscStrategy::Combined`] uses primal–dual
/// instead of the simplex-based LP rounding.
#[derive(Debug, Clone, Copy)]
pub struct LpLimits {
    /// Maximum number of WSC sets for the simplex path.
    pub max_sets: usize,
    /// Maximum number of WSC elements for the simplex path.
    pub max_elements: usize,
}

impl Default for LpLimits {
    fn default() -> Self {
        LpLimits {
            max_sets: 600,
            max_elements: 400,
        }
    }
}

/// Solves the residual problem over `queries` with Algorithm 3's core;
/// returns the classifier ids to add to the solution.
pub fn solve_general(
    ws: &WorkState<'_>,
    queries: &[usize],
    strategy: WscStrategy,
    lp_limits: LpLimits,
) -> Result<Vec<ClassifierId>> {
    solve_general_with(ws, queries, strategy, lp_limits, true)
}

/// [`solve_general`] with the reverse-delete refinement toggleable —
/// `refine = false` runs the paper's Algorithm 3 exactly as published
/// (used by the preprocessing-effect experiments, Fig. 3e).
pub fn solve_general_with(
    ws: &WorkState<'_>,
    queries: &[usize],
    strategy: WscStrategy,
    lp_limits: LpLimits,
    refine: bool,
) -> Result<Vec<ClassifierId>> {
    solve_general_scratch(
        ws,
        queries,
        strategy,
        lp_limits,
        refine,
        &mut ReductionScratch::new(),
    )
}

/// [`solve_general_with`] drawing the reduction's buffers from `scratch` and
/// recycling them on the way out — callers solving many components (or many
/// rounds) reuse one scratch so the reduction allocates nothing after the
/// first call.
pub fn solve_general_scratch(
    ws: &WorkState<'_>,
    queries: &[usize],
    strategy: WscStrategy,
    lp_limits: LpLimits,
    refine: bool,
    scratch: &mut ReductionScratch,
) -> Result<Vec<ClassifierId>> {
    let _span = mc3_telemetry::span("general.solve");
    mc3_telemetry::span_add(mc3_telemetry::Counter::DispatchGeneral, 1);
    let red = reduce_to_wsc_with(ws, queries, scratch);
    if red.instance.num_elements() == 0 {
        scratch.recycle(red);
        return Ok(Vec::new());
    }
    red.instance.ensure_coverable().map_err(|e| {
        // translate element index back to its query
        if let mc3_core::Mc3Error::Uncoverable { query_index } = e {
            mc3_core::Mc3Error::Uncoverable {
                query_index: red.element_origin[query_index].0 as usize,
            }
        } else {
            e
        }
    })?;

    let lp_fits = red.instance.num_sets() <= lp_limits.max_sets
        && red.instance.num_elements() <= lp_limits.max_elements;

    // Every raw output goes through reverse-delete pruning and swap local
    // search; the two interact (a swap can pin a previously redundant set),
    // so both chains are evaluated and the cheaper kept. Cost can only
    // decrease — all guarantees are preserved (see mc3_setcover::{prune,
    // local_search}).
    let refine = |sol: SetCoverSolution| {
        if refine {
            let pruned = prune_redundant(&red.instance, &sol);
            let swapped = local_search(&red.instance, &sol);
            if swapped.cost < pruned.cost {
                swapped
            } else {
                pruned
            }
        } else {
            sol
        }
    };
    let best: SetCoverSolution = match strategy {
        WscStrategy::GreedyOnly => refine(solve_greedy(&red.instance)?),
        WscStrategy::PrimalDualOnly => refine(solve_primal_dual(&red.instance)?),
        WscStrategy::LpRoundingOnly => refine(solve_lp_rounding(&red.instance)?),
        WscStrategy::Combined => {
            let greedy = refine(solve_greedy(&red.instance)?);
            // The simplex can hit its anti-cycling pivot bound on adversarial
            // covering LPs; primal–dual carries the same f-approximation
            // guarantee, so Combined degrades gracefully instead of failing.
            let dual_raw = if lp_fits {
                match solve_lp_rounding(&red.instance) {
                    Err(mc3_core::Mc3Error::LpIterationLimit { pivots }) => {
                        mc3_obs::warn(
                            "solver",
                            "LP rounding hit the simplex pivot bound; falling back to primal-dual",
                            &[("pivots", pivots.into())],
                        );
                        solve_primal_dual(&red.instance)?
                    }
                    other => other?,
                }
            } else {
                solve_primal_dual(&red.instance)?
            };
            let dual = refine(dual_raw);
            if dual.cost < greedy.cost {
                dual
            } else {
                greedy
            }
        }
    };

    let mut ids: Vec<ClassifierId> = best
        .selected
        .iter()
        .map(|&s| red.set_to_classifier[s])
        .collect();
    ids.sort_unstable();
    ids.dedup();
    // Certificate (verify feature): coverage plus the Theorem 5.3 ratio.
    // The greedy side is bounded by H(Δ) — at most the paper's
    // ln I + ln(k−1) + 1 once preprocessing has removed singletons — and
    // the dual side by the instance's exact frequency f ≤ 2^(k−1); the
    // Combined strategy keeps the cheaper output, hence the min.
    #[cfg(feature = "verify")]
    {
        let _vspan = mc3_telemetry::span("verify.ratio");
        let bounds = crate::verify::residual_bounds(ws, queries);
        let theorem = if bounds.queries > 0 && bounds.max_len >= 2 {
            (bounds.queries as f64).ln() + ((bounds.max_len - 1) as f64).ln() + 1.0
        } else {
            1.0
        };
        let greedy_ratio = mc3_setcover::verify::harmonic(red.instance.degree())
            .max(theorem)
            .max(1.0);
        let f_ratio = (red.instance.frequency() as f64).max(1.0);
        let ratio = match strategy {
            WscStrategy::GreedyOnly => greedy_ratio,
            WscStrategy::PrimalDualOnly | WscStrategy::LpRoundingOnly => f_ratio,
            WscStrategy::Combined => greedy_ratio.min(f_ratio),
        };
        crate::verify::assert_ratio_certificate(ws, queries, &ids, ratio);
        mc3_telemetry::span_add(mc3_telemetry::Counter::VerifyRatioChecks, 1);
    }
    scratch.recycle(red);
    Ok(ids)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mc3_core::{ClassifierUniverse, Instance, Mc3Error, PropSet, Weights, WeightsBuilder};

    fn ws_for(instance: &Instance) -> WorkState<'_> {
        let u = ClassifierUniverse::build(instance);
        WorkState::new(instance, u)
    }

    fn cost_of(ws: &WorkState<'_>, ids: &[ClassifierId]) -> u64 {
        ids.iter().map(|&c| ws.universe.weight(c).raw()).sum()
    }

    fn all_queries(instance: &Instance) -> Vec<usize> {
        (0..instance.num_queries()).collect()
    }

    #[test]
    fn paper_example_1_1_is_solved_optimally() {
        // props: j=0, w=1, a=2, c=3; optimum {AC, AJ, W} = 7N
        let w = WeightsBuilder::new()
            .classifier([3u32], 5u64)
            .classifier([2u32], 5u64)
            .classifier([0u32], 5u64)
            .classifier([1u32], 1u64)
            .classifier([2u32, 3], 3u64)
            .classifier([1u32, 2], 5u64)
            .classifier([0u32, 2], 3u64)
            .classifier([0u32, 1], 4u64)
            .classifier([0u32, 1, 2], 5u64)
            .build();
        let instance = Instance::new(vec![vec![0u32, 1, 2], vec![2u32, 3]], w).unwrap();
        let ws = ws_for(&instance);
        for strategy in [
            WscStrategy::Combined,
            WscStrategy::GreedyOnly,
            WscStrategy::PrimalDualOnly,
            WscStrategy::LpRoundingOnly,
        ] {
            let ids =
                solve_general(&ws, &all_queries(&instance), strategy, LpLimits::default()).unwrap();
            let sol = mc3_core::Solution::from_ids(&ws.universe, ids.iter().copied());
            sol.verify(&instance).unwrap();
            // all strategies cover; Combined must reach the optimum here
            if strategy == WscStrategy::Combined {
                assert_eq!(cost_of(&ws, &ids), 7, "strategy {strategy:?}");
                let aj = ws.universe.id_of(&PropSet::from_ids([0u32, 2])).unwrap();
                let ac = ws.universe.id_of(&PropSet::from_ids([2u32, 3])).unwrap();
                let wsing = ws.universe.id_of(&PropSet::from_ids([1u32])).unwrap();
                assert_eq!(
                    ids,
                    vec![aj, wsing, ac]
                        .into_iter()
                        .collect::<std::collections::BTreeSet<_>>()
                        .into_iter()
                        .collect::<Vec<_>>()
                );
            }
        }
    }

    #[test]
    fn three_property_query_uses_combination() {
        let w = WeightsBuilder::new()
            .classifier([0u32], 2u64)
            .classifier([1u32], 2u64)
            .classifier([2u32], 2u64)
            .classifier([0u32, 1], 3u64)
            .classifier([0u32, 2], 9u64)
            .classifier([1u32, 2], 9u64)
            .classifier([0u32, 1, 2], 9u64)
            .build();
        let instance = Instance::new(vec![vec![0u32, 1, 2]], w).unwrap();
        let ws = ws_for(&instance);
        let ids = solve_general(
            &ws,
            &all_queries(&instance),
            WscStrategy::Combined,
            LpLimits::default(),
        )
        .unwrap();
        assert_eq!(cost_of(&ws, &ids), 5); // XY(3) + Z(2)
    }

    #[test]
    fn residual_respects_selected_coverage() {
        let instance = Instance::new(vec![vec![0u32, 1, 2]], Weights::uniform(2u64)).unwrap();
        let mut ws = ws_for(&instance);
        let xy = ws.universe.id_of(&PropSet::from_ids([0u32, 1])).unwrap();
        ws.select(xy);
        let alive = ws.alive_query_indices();
        let ids = solve_general(&ws, &alive, WscStrategy::Combined, LpLimits::default()).unwrap();
        // only z needed: Z (2) is among the cheapest completions
        assert_eq!(cost_of(&ws, &ids), 2);
    }

    #[test]
    fn uncoverable_translates_back_to_query_index() {
        let w = WeightsBuilder::new().classifier([0u32], 1u64).build();
        let instance = Instance::new(vec![vec![0u32], vec![1u32, 2]], w).unwrap();
        let ws = ws_for(&instance);
        let err = solve_general(
            &ws,
            &all_queries(&instance),
            WscStrategy::Combined,
            LpLimits::default(),
        )
        .unwrap_err();
        assert_eq!(err, Mc3Error::Uncoverable { query_index: 1 });
    }

    #[test]
    fn empty_residual_returns_nothing() {
        let instance = Instance::new(vec![vec![0u32, 1]], Weights::uniform(1u64)).unwrap();
        let mut ws = ws_for(&instance);
        let xy = ws.universe.id_of(&PropSet::from_ids([0u32, 1])).unwrap();
        ws.select(xy);
        let ids = solve_general(&ws, &[], WscStrategy::Combined, LpLimits::default()).unwrap();
        assert!(ids.is_empty());
    }

    #[test]
    fn greedy_and_dual_strategies_both_cover_random_instances() {
        use mc3_core::rng::prelude::*;
        let mut rng = StdRng::seed_from_u64(77);
        for _ in 0..25 {
            let n = rng.gen_range(1..=6usize);
            let mut queries = Vec::new();
            for _ in 0..n {
                let len = rng.gen_range(1..=4usize);
                let props: Vec<u32> = (0..len).map(|_| rng.gen_range(0..8u32)).collect();
                queries.push(props);
            }
            let instance = Instance::new(queries, Weights::seeded(rng.gen(), 1, 20)).unwrap();
            let ws = ws_for(&instance);
            for strategy in [
                WscStrategy::GreedyOnly,
                WscStrategy::PrimalDualOnly,
                WscStrategy::LpRoundingOnly,
                WscStrategy::Combined,
            ] {
                let ids =
                    solve_general(&ws, &all_queries(&instance), strategy, LpLimits::default())
                        .unwrap();
                let sol = mc3_core::Solution::from_ids(&ws.universe, ids.iter().copied());
                sol.verify(&instance).unwrap();
            }
        }
    }
}
