//! The MC³ → Weighted Set Cover reduction (§5.2, Figure 2).
//!
//! For every query `q` and property `p ∈ q` still in need of coverage, an
//! element `p_q` is created (a distinct element per occurrence of the same
//! property in different queries). Every *usable* classifier `S` becomes a
//! set containing exactly the elements `{ p_q : p ∈ S, S ⊆ q }`; its cost is
//! the classifier's current weight. Solutions map back one-to-one,
//! preserving cost.
//!
//! The reduction operates on the residual problem of a [`WorkState`]:
//! properties already covered by selected classifiers produce no elements,
//! and pruned classifiers produce no sets.

use crate::work::WorkState;
use mc3_core::{ClassifierId, FxHashMap};
use mc3_setcover::SetCoverInstance;

/// A WSC instance plus the mapping back to classifiers.
#[derive(Debug)]
pub struct WscReduction {
    /// The reduced instance.
    pub instance: SetCoverInstance,
    /// `set_to_classifier[set_id]` is the classifier the set encodes.
    pub set_to_classifier: Vec<ClassifierId>,
    /// `(query index, local property bit)` of every element, in element order.
    pub element_origin: Vec<(u32, u8)>,
}

/// Builds the residual WSC instance over the (alive) queries listed in
/// `queries`.
pub fn reduce_to_wsc(ws: &WorkState<'_>, queries: &[usize]) -> WscReduction {
    // 1. number the elements: one per (query, needed property bit)
    let mut element_origin: Vec<(u32, u8)> = Vec::new();
    // element_base[i] = first element id of queries[i]
    let mut element_base: Vec<u32> = Vec::with_capacity(queries.len());
    for &q in queries {
        element_base.push(element_origin.len() as u32);
        let mut need = ws.need(q);
        while need != 0 {
            let b = need.trailing_zeros() as u8;
            need &= need - 1;
            element_origin.push((q as u32, b));
        }
    }
    let num_elements = element_origin.len();

    // 2. build the sets, grouped by classifier id
    let mut slot_of: FxHashMap<u32, u32> = FxHashMap::default();
    let mut set_to_classifier: Vec<ClassifierId> = Vec::new();
    let mut set_elements: Vec<Vec<u32>> = Vec::new();

    for (i, &q) in queries.iter().enumerate() {
        let need = ws.need(q);
        if need == 0 {
            continue;
        }
        let local = ws.universe.query_local(q);
        // element id of bit b within this query
        let base = element_base[i];
        let mut bit_elem = [0u32; mc3_core::MAX_QUERY_LEN];
        {
            let mut n = need;
            let mut next = base;
            while n != 0 {
                let b = n.trailing_zeros() as usize;
                n &= n - 1;
                bit_elem[b] = next;
                next += 1;
            }
        }
        for mask in 1..local.table.len() as u32 {
            let id = local.table[mask as usize];
            if id.is_none() || !ws.is_usable(id) {
                continue;
            }
            let covers = mask & need;
            if covers == 0 {
                continue;
            }
            let slot = *slot_of.entry(id.0).or_insert_with(|| {
                let s = set_to_classifier.len() as u32;
                set_to_classifier.push(id);
                set_elements.push(Vec::new());
                s
            });
            let list = &mut set_elements[slot as usize];
            let mut bits = covers;
            while bits != 0 {
                let b = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                list.push(bit_elem[b]);
            }
        }
    }

    let sets = set_elements
        .into_iter()
        .zip(set_to_classifier.iter())
        .map(|(els, &cid)| (els, ws.weight[cid.index()]))
        .collect();

    WscReduction {
        instance: SetCoverInstance::new(num_elements, sets),
        set_to_classifier,
        element_origin,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mc3_core::{ClassifierUniverse, Instance, PropSet, Weight, Weights};

    fn ws_for(instance: &Instance) -> WorkState<'_> {
        let u = ClassifierUniverse::build(instance);
        WorkState::new(instance, u)
    }

    #[test]
    fn figure2_example_shape() {
        // P = {x,y,z,v}, Q = {xyz, yzv}, all weights 1 (Figure 2)
        let instance = Instance::new(
            vec![vec![0u32, 1, 2], vec![1u32, 2, 3]],
            Weights::uniform(1u64),
        )
        .unwrap();
        let ws = ws_for(&instance);
        let red = reduce_to_wsc(&ws, &[0, 1]);
        // n̂ = 3 + 3 elements
        assert_eq!(red.instance.num_elements(), 6);
        // C_Q: subsets of xyz (7) + subsets of yzv (7) − shared {y},{z},{yz} (3) = 11
        assert_eq!(red.instance.num_sets(), 11);
        // the YZ set covers elements in both queries → size 4
        let yz = ws.universe.id_of(&PropSet::from_ids([1u32, 2])).unwrap();
        let slot = red.set_to_classifier.iter().position(|&c| c == yz).unwrap();
        assert_eq!(red.instance.set(slot).len(), 4);
        // frequency for k=3 full universe: 2^(k-1) = 4
        assert_eq!(red.instance.frequency(), 4);
    }

    #[test]
    fn covered_properties_produce_no_elements() {
        let instance = Instance::new(vec![vec![0u32, 1]], Weights::uniform(1u64)).unwrap();
        let mut ws = ws_for(&instance);
        let x = ws.universe.id_of(&PropSet::from_ids([0u32])).unwrap();
        ws.select(x);
        let alive = ws.alive_query_indices();
        let red = reduce_to_wsc(&ws, &alive);
        assert_eq!(red.instance.num_elements(), 1); // only y remains
                                                    // X covers nothing now → not a set; Y and XY remain
        assert_eq!(red.instance.num_sets(), 2);
    }

    #[test]
    fn removed_classifiers_produce_no_sets() {
        let instance = Instance::new(vec![vec![0u32, 1]], Weights::uniform(3u64)).unwrap();
        let mut ws = ws_for(&instance);
        let xy = ws.universe.id_of(&PropSet::from_ids([0u32, 1])).unwrap();
        ws.remove(xy, Weight::new(2));
        let red = reduce_to_wsc(&ws, &[0]);
        assert_eq!(red.instance.num_sets(), 2); // X and Y only
        assert!(!red.set_to_classifier.contains(&xy));
    }

    #[test]
    fn element_origins_track_queries() {
        let instance =
            Instance::new(vec![vec![0u32, 1], vec![2u32]], Weights::uniform(1u64)).unwrap();
        let ws = ws_for(&instance);
        let red = reduce_to_wsc(&ws, &[0, 1]);
        assert_eq!(red.element_origin, vec![(0, 0), (0, 1), (1, 0)]);
    }

    #[test]
    fn empty_query_list() {
        let instance = Instance::new(vec![vec![0u32, 1]], Weights::uniform(1u64)).unwrap();
        let ws = ws_for(&instance);
        let red = reduce_to_wsc(&ws, &[]);
        assert_eq!(red.instance.num_elements(), 0);
        assert_eq!(red.instance.num_sets(), 0);
    }
}
