//! The MC³ → Weighted Set Cover reduction (§5.2, Figure 2).
//!
//! For every query `q` and property `p ∈ q` still in need of coverage, an
//! element `p_q` is created (a distinct element per occurrence of the same
//! property in different queries). Every *usable* classifier `S` becomes a
//! set containing exactly the elements `{ p_q : p ∈ S, S ⊆ q }`; its cost is
//! the classifier's current weight. Solutions map back one-to-one,
//! preserving cost.
//!
//! The reduction operates on the residual problem of a [`WorkState`]:
//! properties already covered by selected classifiers produce no elements,
//! and pruned classifiers produce no sets.

use crate::work::WorkState;
use mc3_core::{u32_of, u8_of};
use mc3_core::{ClassifierId, FxHashMap, Weight};
use mc3_setcover::SetCoverInstance;

/// A WSC instance plus the mapping back to classifiers.
#[derive(Debug)]
pub struct WscReduction {
    /// The reduced instance.
    pub instance: SetCoverInstance,
    /// `set_to_classifier[set_id]` is the classifier the set encodes.
    pub set_to_classifier: Vec<ClassifierId>,
    /// `(query index, local property bit)` of every element, in element order.
    pub element_origin: Vec<(u32, u8)>,
}

/// Reusable buffers for [`reduce_to_wsc_with`].
///
/// One reduction round allocates a per-slot element-list arena, a
/// classifier→slot map, both CSR directions of the instance and the two
/// translation tables. A scratch keeps all of them alive between rounds so
/// repeated reductions (per component, per round in the multivalued
/// extension) run allocation-free after warm-up: pass the same scratch to
/// every call and hand finished reductions back via
/// [`ReductionScratch::recycle`].
#[derive(Debug, Default)]
pub struct ReductionScratch {
    /// `element_base[i]` = first element id of `queries[i]`.
    element_base: Vec<u32>,
    /// classifier id → set slot for the current round.
    slot_of: FxHashMap<u32, u32>,
    /// Per-slot element-list arena; inner `Vec`s are recycled across rounds.
    set_lists: Vec<Vec<u32>>,
    // Recycled output buffers, refilled by `recycle`.
    set_off: Vec<u32>,
    set_data: Vec<u32>,
    costs: Vec<Weight>,
    cont_off: Vec<u32>,
    cont_data: Vec<u32>,
    set_to_classifier: Vec<ClassifierId>,
    element_origin: Vec<(u32, u8)>,
}

impl ReductionScratch {
    /// An empty scratch (no buffers warmed up yet).
    pub fn new() -> ReductionScratch {
        ReductionScratch::default()
    }

    /// Reclaims the buffers of a finished reduction so the next
    /// [`reduce_to_wsc_with`] call reuses their allocations.
    pub fn recycle(&mut self, red: WscReduction) {
        let (set_off, set_data, costs, cont_off, cont_data) = red.instance.into_parts();
        self.set_off = set_off;
        self.set_data = set_data;
        self.costs = costs;
        self.cont_off = cont_off;
        self.cont_data = cont_data;
        self.set_to_classifier = red.set_to_classifier;
        self.element_origin = red.element_origin;
    }
}

/// Builds the residual WSC instance over the (alive) queries listed in
/// `queries`. Convenience wrapper over [`reduce_to_wsc_with`] with a
/// throwaway scratch — callers reducing in a loop should hold a
/// [`ReductionScratch`] instead.
pub fn reduce_to_wsc(ws: &WorkState<'_>, queries: &[usize]) -> WscReduction {
    reduce_to_wsc_with(ws, queries, &mut ReductionScratch::new())
}

/// [`reduce_to_wsc`] drawing every buffer from `scratch`; allocation-free
/// once the scratch is warm (and the round is no larger than previous ones).
pub fn reduce_to_wsc_with(
    ws: &WorkState<'_>,
    queries: &[usize],
    scratch: &mut ReductionScratch,
) -> WscReduction {
    // Disjoint borrows of every pooled buffer.
    let ReductionScratch {
        element_base,
        slot_of,
        set_lists,
        set_off,
        set_data,
        costs,
        cont_off,
        cont_data,
        set_to_classifier,
        element_origin,
    } = scratch;

    // Warm-scratch rounds run this whole body allocation-free; the span's
    // per-instance minimum is pinned at zero by `mc3-audit consistency`.
    let reduce_span = mc3_telemetry::span("solver.reduce");

    // 1. number the elements: one per (query, needed property bit)
    element_origin.clear();
    element_base.clear();
    for &q in queries {
        // audit:allow(no-alloc-in-hot-loops) reviewed: push into recycled ReductionScratch buffer — capacity amortized across solves
        element_base.push(u32_of(element_origin.len()));
        let mut need = ws.need(q);
        while need != 0 {
            let b = u8_of(need.trailing_zeros());
            need &= need - 1;
            // audit:allow(no-alloc-in-hot-loops) reviewed: push into recycled ReductionScratch buffer — capacity amortized across solves
            element_origin.push((u32_of(q), b));
        }
    }
    let num_elements = element_origin.len();

    // 2. build the sets, grouped by classifier id. Element ids grow with
    // the query index and, within a query, with the property bit — and the
    // mask loop touches each classifier at most once per query — so every
    // slot's list comes out strictly ascending with no re-sort needed.
    slot_of.clear();
    set_to_classifier.clear();
    let mut live_slots = 0usize;

    for (i, &q) in queries.iter().enumerate() {
        let need = ws.need(q);
        if need == 0 {
            continue;
        }
        let local = ws.universe.query_local(q);
        // element id of bit b within this query
        let base = element_base[i];
        let mut bit_elem = [0u32; mc3_core::MAX_QUERY_LEN];
        {
            let mut n = need;
            let mut next = base;
            while n != 0 {
                let b = n.trailing_zeros() as usize;
                n &= n - 1;
                bit_elem[b] = next;
                next += 1;
            }
        }
        for mask in 1..u32_of(local.table.len()) {
            let id = local.table[mask as usize];
            if id.is_none() || !ws.is_usable(id) {
                continue;
            }
            let covers = mask & need;
            if covers == 0 {
                continue;
            }
            let slot = *slot_of.entry(id.0).or_insert_with(|| {
                let s = u32_of(set_to_classifier.len());
                // audit:allow(no-alloc-in-hot-loops) reviewed: push into recycled ReductionScratch buffer — capacity amortized across solves
                set_to_classifier.push(id);
                if live_slots == set_lists.len() {
                    // audit:allow(no-alloc-in-hot-loops) reviewed: arena grows only when live_slots outruns the recycled arena — amortized across solves
                    set_lists.push(Vec::new());
                }
                set_lists[live_slots].clear();
                live_slots += 1;
                s
            });
            let list = &mut set_lists[slot as usize];
            let mut bits = covers;
            while bits != 0 {
                let b = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                // audit:allow(no-alloc-in-hot-loops) reviewed: push into recycled ReductionScratch buffer — capacity amortized across solves
                list.push(bit_elem[b]);
            }
        }
    }

    // 3. flatten the arena into the recycled CSR buffers
    set_off.clear();
    set_off.push(0);
    set_data.clear();
    costs.clear();
    for (list, &cid) in set_lists[..live_slots].iter().zip(set_to_classifier.iter()) {
        set_data.extend_from_slice(list);
        // audit:allow(no-alloc-in-hot-loops) reviewed: push into recycled ReductionScratch buffer — capacity amortized across solves
        set_off.push(u32_of(set_data.len()));
        // audit:allow(no-alloc-in-hot-loops) reviewed: push into recycled ReductionScratch buffer — capacity amortized across solves
        costs.push(ws.weight[cid.index()]);
    }

    drop(reduce_span);
    let instance = SetCoverInstance::from_parts(
        num_elements,
        std::mem::take(set_off),
        std::mem::take(set_data),
        std::mem::take(costs),
        std::mem::take(cont_off),
        std::mem::take(cont_data),
    );
    WscReduction {
        instance,
        set_to_classifier: std::mem::take(set_to_classifier),
        element_origin: std::mem::take(element_origin),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mc3_core::{ClassifierUniverse, Instance, PropSet, Weight, Weights};

    fn ws_for(instance: &Instance) -> WorkState<'_> {
        let u = ClassifierUniverse::build(instance);
        WorkState::new(instance, u)
    }

    #[test]
    fn figure2_example_shape() {
        // P = {x,y,z,v}, Q = {xyz, yzv}, all weights 1 (Figure 2)
        let instance = Instance::new(
            vec![vec![0u32, 1, 2], vec![1u32, 2, 3]],
            Weights::uniform(1u64),
        )
        .unwrap();
        let ws = ws_for(&instance);
        let red = reduce_to_wsc(&ws, &[0, 1]);
        // n̂ = 3 + 3 elements
        assert_eq!(red.instance.num_elements(), 6);
        // C_Q: subsets of xyz (7) + subsets of yzv (7) − shared {y},{z},{yz} (3) = 11
        assert_eq!(red.instance.num_sets(), 11);
        // the YZ set covers elements in both queries → size 4
        let yz = ws.universe.id_of(&PropSet::from_ids([1u32, 2])).unwrap();
        let slot = red.set_to_classifier.iter().position(|&c| c == yz).unwrap();
        assert_eq!(red.instance.set(slot).len(), 4);
        // frequency for k=3 full universe: 2^(k-1) = 4
        assert_eq!(red.instance.frequency(), 4);
    }

    #[test]
    fn covered_properties_produce_no_elements() {
        let instance = Instance::new(vec![vec![0u32, 1]], Weights::uniform(1u64)).unwrap();
        let mut ws = ws_for(&instance);
        let x = ws.universe.id_of(&PropSet::from_ids([0u32])).unwrap();
        ws.select(x);
        let alive = ws.alive_query_indices();
        let red = reduce_to_wsc(&ws, &alive);
        assert_eq!(red.instance.num_elements(), 1); // only y remains
                                                    // X covers nothing now → not a set; Y and XY remain
        assert_eq!(red.instance.num_sets(), 2);
    }

    #[test]
    fn removed_classifiers_produce_no_sets() {
        let instance = Instance::new(vec![vec![0u32, 1]], Weights::uniform(3u64)).unwrap();
        let mut ws = ws_for(&instance);
        let xy = ws.universe.id_of(&PropSet::from_ids([0u32, 1])).unwrap();
        ws.remove(xy, Weight::new(2));
        let red = reduce_to_wsc(&ws, &[0]);
        assert_eq!(red.instance.num_sets(), 2); // X and Y only
        assert!(!red.set_to_classifier.contains(&xy));
    }

    #[test]
    fn element_origins_track_queries() {
        let instance =
            Instance::new(vec![vec![0u32, 1], vec![2u32]], Weights::uniform(1u64)).unwrap();
        let ws = ws_for(&instance);
        let red = reduce_to_wsc(&ws, &[0, 1]);
        assert_eq!(red.element_origin, vec![(0, 0), (0, 1), (1, 0)]);
    }

    #[test]
    fn empty_query_list() {
        let instance = Instance::new(vec![vec![0u32, 1]], Weights::uniform(1u64)).unwrap();
        let ws = ws_for(&instance);
        let red = reduce_to_wsc(&ws, &[]);
        assert_eq!(red.instance.num_elements(), 0);
        assert_eq!(red.instance.num_sets(), 0);
    }

    fn assert_same_reduction(a: &WscReduction, b: &WscReduction) {
        assert_eq!(a.element_origin, b.element_origin);
        assert_eq!(a.set_to_classifier, b.set_to_classifier);
        assert_eq!(a.instance.num_elements(), b.instance.num_elements());
        assert_eq!(a.instance.num_sets(), b.instance.num_sets());
        for s in 0..a.instance.num_sets() {
            assert_eq!(a.instance.set(s), b.instance.set(s));
            assert_eq!(a.instance.cost(s), b.instance.cost(s));
        }
        for e in 0..a.instance.num_elements() as u32 {
            assert_eq!(a.instance.containing(e), b.instance.containing(e));
        }
    }

    #[test]
    fn recycled_scratch_reproduces_fresh_reductions() {
        // Rounds of different shapes and sizes through one scratch — each
        // must be identical to a reduction with a throwaway scratch.
        let instance = Instance::new(
            vec![
                vec![0u32, 1, 2],
                vec![1u32, 2, 3],
                vec![4u32, 5],
                vec![0u32],
            ],
            Weights::uniform(2u64),
        )
        .unwrap();
        let ws = ws_for(&instance);
        let mut scratch = ReductionScratch::new();
        for queries in [
            vec![0usize, 1, 2, 3],
            vec![2usize],
            vec![0usize, 1],
            vec![],
            vec![3usize, 2, 0],
        ] {
            let fresh = reduce_to_wsc(&ws, &queries);
            let reused = reduce_to_wsc_with(&ws, &queries, &mut scratch);
            assert_same_reduction(&fresh, &reused);
            scratch.recycle(reused);
        }
    }
}
