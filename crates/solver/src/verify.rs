//! Solver-level certificate checks (`verify` feature).
//!
//! The per-query cover DP ([`crate::cover_dp::min_cover`]) brackets the
//! residual optimum from both sides without knowing it:
//!
//! * any feasible solution restricted to one query covers that query, so
//!   `LB = max_q min_cover(q)` is a lower bound on `OPT`;
//! * the union of the per-query minimum covers is itself feasible, so
//!   `UB = Σ_q min_cover(q)` is an upper bound on `OPT`.
//!
//! The exact `k ≤ 2` solver must land inside `[LB, UB]` (Theorem 4.1),
//! and Algorithm 3's output must satisfy `cost ≤ ρ · UB ≥ ρ · OPT` for
//! its guaranteed factor `ρ` (Theorem 5.3). Both checks re-derive the
//! bounds from the untouched [`WorkState`], so a buggy reduction, flow
//! solve or WSC run trips an assertion instead of silently shipping a
//! worse-than-guaranteed classifier set.

use crate::cover_dp::min_cover;
use crate::work::WorkState;
use mc3_core::{ClassifierId, FxHashSet};

/// Lower/upper bounds on the residual optimum derived from per-query
/// minimum covers, plus the parameters of the Theorem 5.3 ratio.
#[derive(Debug, Clone, Copy)]
pub struct ResidualBounds {
    /// `max_q min_cover(q)` — a lower bound on the residual `OPT`.
    pub lower: u128,
    /// `Σ_q min_cover(q)` — an upper bound on the residual `OPT`.
    pub upper: u128,
    /// Number of still-uncovered queries (`I` in Theorem 5.3).
    pub queries: usize,
    /// Maximum length of a still-uncovered query (`k` in Theorem 5.3).
    pub max_len: usize,
}

/// Computes [`ResidualBounds`] over the listed queries. Asserts that every
/// residual query still has a finite cover — the solver just claimed to
/// have solved them.
pub fn residual_bounds(ws: &WorkState<'_>, queries: &[usize]) -> ResidualBounds {
    let mut bounds = ResidualBounds {
        lower: 0,
        upper: 0,
        queries: 0,
        max_len: 0,
    };
    for &q in queries {
        if ws.need(q) == 0 {
            continue;
        }
        let cover = min_cover(ws, q);
        assert!(
            cover.is_some(),
            "query {q} has no finite cover, yet the solver returned a solution"
        );
        let Some((cost, _)) = cover else { continue };
        let finite = cost.finite();
        assert!(
            finite.is_some(),
            "min_cover returned an infinite cost for query {q}"
        );
        let c = finite.unwrap_or(0) as u128;
        bounds.lower = bounds.lower.max(c);
        bounds.upper += c;
        bounds.queries += 1;
        bounds.max_len = bounds.max_len.max(ws.universe.query_local(q).len);
    }
    bounds
}

/// Sums the residual cost of `picked` (classifiers already selected in
/// `ws` are free, exactly as the reduction priced them). Asserts every
/// picked classifier is usable and finite.
pub fn picked_cost(ws: &WorkState<'_>, picked: &[ClassifierId]) -> u128 {
    let mut total: u128 = 0;
    for &id in picked {
        if ws.selected[id.index()] {
            continue;
        }
        let finite = ws.weight[id.index()].finite();
        assert!(
            finite.is_some(),
            "solver picked classifier {id:?} with infinite weight"
        );
        total += finite.unwrap_or(0) as u128;
    }
    total
}

/// Asserts that `picked`, together with the classifiers already selected
/// in `ws`, covers every still-needed property of every listed query.
pub fn assert_covers_residual(ws: &WorkState<'_>, queries: &[usize], picked: &[ClassifierId]) {
    let picked_set: FxHashSet<u32> = picked.iter().map(|id| id.0).collect();
    for &q in queries {
        let need = ws.need(q);
        if need == 0 {
            continue;
        }
        let local = ws.universe.query_local(q);
        let mut covered = 0u32;
        for mask in 1..(1u32 << local.len) {
            let id = local.table[mask as usize];
            if !id.is_none() && picked_set.contains(&id.0) {
                covered |= mask;
            }
        }
        assert_eq!(
            need & !covered,
            0,
            "query {q} still needs properties (mask {:#b}) the picked classifiers do not cover",
            need & !covered
        );
    }
}

/// Certificate for an *exact* residual solve (the `k ≤ 2` path):
/// coverage plus `LB ≤ cost ≤ UB`, all in exact integer arithmetic.
pub fn assert_exact_certificate(ws: &WorkState<'_>, queries: &[usize], picked: &[ClassifierId]) {
    assert_covers_residual(ws, queries, picked);
    let bounds = residual_bounds(ws, queries);
    let cost = picked_cost(ws, picked);
    assert!(
        cost >= bounds.lower,
        "exact solver cost {cost} is below the per-query lower bound {}: \
         cost accounting or coverage is corrupt",
        bounds.lower
    );
    assert!(
        cost <= bounds.upper,
        "exact solver cost {cost} exceeds the union-of-min-covers bound {}: \
         the \"optimal\" WVC solution is not optimal",
        bounds.upper
    );
}

/// Certificate for an *approximate* residual solve (Algorithm 3):
/// coverage, `cost ≥ LB`, and the Theorem 5.3-style guarantee
/// `cost ≤ ratio · UB` (sound because `UB ≥ OPT`). A hair of relative
/// slack absorbs the `f64` rounding in `ratio`.
pub fn assert_ratio_certificate(
    ws: &WorkState<'_>,
    queries: &[usize],
    picked: &[ClassifierId],
    ratio: f64,
) {
    assert!(ratio >= 1.0, "approximation ratios are at least 1");
    assert_covers_residual(ws, queries, picked);
    let bounds = residual_bounds(ws, queries);
    let cost = picked_cost(ws, picked);
    assert!(
        cost >= bounds.lower,
        "solver cost {cost} is below the per-query lower bound {}: \
         cost accounting or coverage is corrupt",
        bounds.lower
    );
    let allowed = ratio * bounds.upper as f64 * (1.0 + 1e-9);
    assert!(
        cost as f64 <= allowed,
        "solver cost {cost} exceeds ratio {ratio:.4} x upper bound {}: \
         the Theorem 5.3 guarantee does not hold",
        bounds.upper
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use mc3_core::{ClassifierUniverse, Instance, PropSet, WeightsBuilder};

    fn ws_for(instance: &Instance) -> WorkState<'_> {
        let u = ClassifierUniverse::build(instance);
        WorkState::new(instance, u)
    }

    fn instance_xy() -> Instance {
        let w = WeightsBuilder::new()
            .classifier([0u32], 2u64)
            .classifier([1u32], 2u64)
            .classifier([0u32, 1], 3u64)
            .build();
        Instance::new(vec![vec![0u32, 1]], w).unwrap()
    }

    #[test]
    fn bounds_bracket_the_single_query_optimum() {
        let instance = instance_xy();
        let ws = ws_for(&instance);
        let b = residual_bounds(&ws, &[0]);
        assert_eq!(b.lower, 3); // XY at cost 3 is the min cover
        assert_eq!(b.upper, 3);
        assert_eq!(b.queries, 1);
        assert_eq!(b.max_len, 2);
    }

    #[test]
    fn accepts_the_optimal_pick() {
        let instance = instance_xy();
        let ws = ws_for(&instance);
        let xy = ws.universe.id_of(&PropSet::from_ids([0u32, 1])).unwrap();
        assert_exact_certificate(&ws, &[0], &[xy]);
    }

    #[test]
    #[should_panic(expected = "not optimal")]
    fn rejects_a_suboptimal_exact_claim() {
        let instance = instance_xy();
        let ws = ws_for(&instance);
        let x = ws.universe.id_of(&PropSet::from_ids([0u32])).unwrap();
        let y = ws.universe.id_of(&PropSet::from_ids([1u32])).unwrap();
        // X + Y = 4 covers, but the exact solver should have found XY = 3.
        assert_exact_certificate(&ws, &[0], &[x, y]);
    }

    #[test]
    #[should_panic(expected = "do not cover")]
    fn rejects_an_uncovering_pick() {
        let instance = instance_xy();
        let ws = ws_for(&instance);
        let x = ws.universe.id_of(&PropSet::from_ids([0u32])).unwrap();
        assert_exact_certificate(&ws, &[0], &[x]);
    }

    #[test]
    fn ratio_certificate_accepts_within_budget() {
        let instance = instance_xy();
        let ws = ws_for(&instance);
        let x = ws.universe.id_of(&PropSet::from_ids([0u32])).unwrap();
        let y = ws.universe.id_of(&PropSet::from_ids([1u32])).unwrap();
        // cost 4 ≤ 2 × UB(3): fine for a 2-approximation.
        assert_ratio_certificate(&ws, &[0], &[x, y], 2.0);
    }

    #[test]
    #[should_panic(expected = "Theorem 5.3")]
    fn ratio_certificate_rejects_a_blown_budget() {
        let w = WeightsBuilder::new()
            .classifier([0u32], 1u64)
            .classifier([1u32], 1u64)
            .classifier([0u32, 1], 100u64)
            .build();
        let instance = Instance::new(vec![vec![0u32, 1]], w).unwrap();
        let ws = ws_for(&instance);
        let xy = ws.universe.id_of(&PropSet::from_ids([0u32, 1])).unwrap();
        // cost 100 > 2 × UB(2): no 2-approximation produces this.
        assert_ratio_certificate(&ws, &[0], &[xy], 2.0);
    }
}
