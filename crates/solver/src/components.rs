//! Step 2 of Algorithm 1 (Observation 3.2): decomposition into
//! property-disjoint sub-problems.
//!
//! Two queries interact only if they (transitively) share properties, so the
//! optimal solution of the whole instance is the union of the optimal
//! solutions of the property-connected components. The paper builds a graph
//! over properties with a path through each query and BFSes; a union–find
//! over property ids is equivalent and allocation-friendlier.

use mc3_core::fxhash::FxHashMap;
use mc3_core::u32_of;

/// Union–find with path halving and union by size.
#[derive(Debug, Clone)]
pub struct UnionFind {
    parent: Vec<u32>,
    size: Vec<u32>,
}

impl UnionFind {
    /// `n` singleton sets.
    pub fn new(n: usize) -> UnionFind {
        UnionFind {
            parent: (0..u32_of(n)).collect(),
            size: vec![1; n],
        }
    }

    /// Representative of `x`'s set.
    pub fn find(&mut self, mut x: u32) -> u32 {
        while self.parent[x as usize] != x {
            self.parent[x as usize] = self.parent[self.parent[x as usize] as usize];
            x = self.parent[x as usize];
        }
        x
    }

    /// Merges the sets of `a` and `b`; returns the new representative.
    pub fn union(&mut self, a: u32, b: u32) -> u32 {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return ra;
        }
        let (big, small) = if self.size[ra as usize] >= self.size[rb as usize] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[small as usize] = big;
        self.size[big as usize] += self.size[small as usize];
        big
    }
}

/// Partitions the queries at `query_indices` (indices into `queries`) into
/// property-connected components. Returns the groups, each a sorted list of
/// the original indices; groups are ordered by their smallest member.
pub fn connected_components(
    queries: &[mc3_core::Query],
    query_indices: &[usize],
) -> Vec<Vec<usize>> {
    // Dense-relabel the properties that actually occur.
    let mut prop_slot: FxHashMap<u32, u32> = FxHashMap::default();
    for &qi in query_indices {
        for p in queries[qi].iter() {
            let next = u32_of(prop_slot.len());
            prop_slot.entry(p.0).or_insert(next);
        }
    }
    let mut uf = UnionFind::new(prop_slot.len());
    for &qi in query_indices {
        let ids = queries[qi].ids();
        for w in ids.windows(2) {
            uf.union(prop_slot[&w[0].0], prop_slot[&w[1].0]);
        }
    }
    let mut groups: FxHashMap<u32, Vec<usize>> = FxHashMap::default();
    for &qi in query_indices {
        let root = uf.find(prop_slot[&queries[qi].ids()[0].0]);
        groups.entry(root).or_default().push(qi);
    }
    let mut out: Vec<Vec<usize>> = groups.into_values().collect();
    for g in &mut out {
        g.sort_unstable();
    }
    out.sort_by_key(|g| g[0]);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mc3_core::PropSet;

    fn q(ids: &[u32]) -> PropSet {
        PropSet::from_ids(ids.iter().copied())
    }

    #[test]
    fn union_find_basics() {
        let mut uf = UnionFind::new(4);
        assert_ne!(uf.find(0), uf.find(1));
        uf.union(0, 1);
        assert_eq!(uf.find(0), uf.find(1));
        uf.union(2, 3);
        uf.union(1, 2);
        assert_eq!(uf.find(0), uf.find(3));
    }

    #[test]
    fn disjoint_queries_split() {
        let queries = vec![q(&[0, 1]), q(&[2, 3]), q(&[4])];
        let comps = connected_components(&queries, &[0, 1, 2]);
        assert_eq!(comps, vec![vec![0], vec![1], vec![2]]);
    }

    #[test]
    fn shared_property_merges() {
        let queries = vec![q(&[0, 1]), q(&[1, 2]), q(&[3, 4]), q(&[4, 5])];
        let comps = connected_components(&queries, &[0, 1, 2, 3]);
        assert_eq!(comps, vec![vec![0, 1], vec![2, 3]]);
    }

    #[test]
    fn transitive_chain_is_one_component() {
        let queries = vec![q(&[0, 1]), q(&[1, 2]), q(&[2, 3])];
        let comps = connected_components(&queries, &[0, 1, 2]);
        assert_eq!(comps, vec![vec![0, 1, 2]]);
    }

    #[test]
    fn respects_the_index_subset() {
        let queries = vec![q(&[0, 1]), q(&[1, 2]), q(&[5])];
        // query 1 excluded: 0 and 2 end up separate
        let comps = connected_components(&queries, &[0, 2]);
        assert_eq!(comps, vec![vec![0], vec![2]]);
    }

    #[test]
    fn empty_input() {
        let queries: Vec<PropSet> = vec![];
        assert!(connected_components(&queries, &[]).is_empty());
    }

    #[test]
    fn long_query_connects_all_its_properties() {
        let queries = vec![q(&[0, 5, 9]), q(&[9, 12]), q(&[5, 20])];
        let comps = connected_components(&queries, &[0, 1, 2]);
        assert_eq!(comps.len(), 1);
    }
}
