//! The preprocessing pipeline — Algorithm 1 of the paper (§3).
//!
//! Four steps, each justified by an observation that preserves at least one
//! optimal solution:
//!
//! * **Step 1** (Obs. 3.1): select the singleton classifier of every
//!   singleton query, select every zero-weight classifier, drop covered
//!   queries and now-irrelevant classifiers.
//! * **Step 2** (Obs. 3.2): decompose into property-connected components —
//!   provided by [`crate::components`] and applied by the solver pipeline
//!   (it is a partitioning of the residual problem, not a mutation).
//! * **Step 3** (Obs. 3.3): remove any classifier whose cheapest
//!   *decomposition* — two classifiers whose union equals it, with removed
//!   members priced at their own recorded decomposition cost — does not cost
//!   more than the classifier itself. Afterwards, select classifiers that
//!   have become *forced*: if some needed property of a query is testable by
//!   exactly one remaining classifier, every cover must use it (this
//!   per-property forcing subsumes the paper's "only one cover possibility"
//!   check on line 10 and is likewise optimality-preserving). Repeat until
//!   fixpoint (line 11), with a bounded pass count.
//! * **Step 4** (Obs. 3.4, `k = 2` only): remove a singleton classifier `X`
//!   whenever the available pair classifiers intersecting it cost no more in
//!   total than `X`, selecting them instead; re-examine affected singletons
//!   (chain reaction).

use crate::work::WorkState;
use mc3_core::u32_of;
use mc3_core::{ClassifierId, Mc3Error, Result, Weight};

/// Which preprocessing steps to run (the paper's ablation knobs).
#[derive(Debug, Clone, Copy)]
pub struct PreprocessOptions {
    /// Step 1: singleton queries and zero-weight classifiers.
    pub singletons_and_zero: bool,
    /// Step 3: decomposition-based removal plus forced selections.
    pub decomposition: bool,
    /// Step 4: singleton-vs-pairs pruning (applies only when `k ≤ 2`).
    pub k2_singleton_pruning: bool,
    /// Upper bound on Step-3 fixpoint passes.
    pub max_passes: usize,
}

impl Default for PreprocessOptions {
    fn default() -> Self {
        PreprocessOptions {
            singletons_and_zero: true,
            decomposition: true,
            k2_singleton_pruning: true,
            max_passes: 6,
        }
    }
}

impl PreprocessOptions {
    /// All steps disabled (the "without preprocessing" ablation).
    pub fn disabled() -> Self {
        PreprocessOptions {
            singletons_and_zero: false,
            decomposition: false,
            k2_singleton_pruning: false,
            max_passes: 0,
        }
    }
}

/// Outcome counters of a preprocessing run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PreprocessStats {
    /// Classifiers selected during preprocessing.
    pub selected: usize,
    /// Classifiers removed by Step 3.
    pub removed_by_decomposition: usize,
    /// Classifiers removed by Step 4.
    pub removed_by_singleton_pruning: usize,
    /// Queries fully covered (killed) during preprocessing.
    pub covered_queries: usize,
    /// Step-3 passes executed.
    pub passes: usize,
}

/// Runs Algorithm 1 over `ws` (Steps 1, 3 and 4; Step 2 is the component
/// split applied by the pipeline).
pub fn preprocess(ws: &mut WorkState<'_>, opts: &PreprocessOptions) -> Result<PreprocessStats> {
    let mut stats = PreprocessStats::default();
    let queries_before = ws.alive_queries();

    if opts.singletons_and_zero {
        let _span = mc3_telemetry::span("preprocess.step1");
        step1(ws, &mut stats)?;
    }
    if opts.decomposition {
        let _span = mc3_telemetry::span("preprocess.step3");
        step3_fixpoint(ws, opts, &mut stats)?;
    }
    if opts.k2_singleton_pruning && ws.instance.max_query_len() <= 2 {
        let _span = mc3_telemetry::span("preprocess.step4");
        step4(ws, &mut stats);
    }

    stats.covered_queries = queries_before - ws.alive_queries();
    mc3_obs::debug(
        "solver",
        "preprocess done",
        &[
            ("selected", stats.selected.into()),
            (
                "removed_by_decomposition",
                stats.removed_by_decomposition.into(),
            ),
            (
                "removed_by_singleton_pruning",
                stats.removed_by_singleton_pruning.into(),
            ),
            ("covered_queries", stats.covered_queries.into()),
        ],
    );
    Ok(stats)
}

/// Step 1: singleton queries force their classifier; zero-weight classifiers
/// are free and always selected.
fn step1(ws: &mut WorkState<'_>, stats: &mut PreprocessStats) -> Result<()> {
    for q in 0..ws.instance.num_queries() {
        if !ws.alive[q] || ws.universe.query_local(q).len != 1 {
            continue;
        }
        let id = ws.universe.query_local(q).table[1];
        if ws.weight[id.index()].is_infinite() {
            return Err(Mc3Error::Uncoverable { query_index: q });
        }
        ws.select(id);
        stats.selected += 1;
        mc3_telemetry::span_add(mc3_telemetry::Counter::PreObs31Selected, 1);
    }
    for c in 0..ws.universe.len() {
        let id = ClassifierId(u32_of(c));
        if !ws.selected[c] && !ws.removed[c] && ws.weight[c].is_zero() && ws.relevant_count[c] > 0 {
            ws.select(id);
            stats.selected += 1;
            mc3_telemetry::span_add(mc3_telemetry::Counter::PreObs31Selected, 1);
        }
    }
    Ok(())
}

/// Step 3 with the line-11 repetition, bounded by `opts.max_passes`.
fn step3_fixpoint(
    ws: &mut WorkState<'_>,
    opts: &PreprocessOptions,
    stats: &mut PreprocessStats,
) -> Result<()> {
    let max_len = ws.universe.max_classifier_len();
    // classifier ids grouped by length, once
    let mut by_len: Vec<Vec<u32>> = vec![Vec::new(); max_len + 1];
    for (id, c) in ws.universe.iter() {
        if c.len() >= 2 {
            by_len[c.len()].push(id.0);
        }
    }

    for _pass in 0..opts.max_passes {
        stats.passes += 1;
        mc3_telemetry::span_add(mc3_telemetry::Counter::PrePasses, 1);
        let mut changed = false;

        // --- decomposition sweep, by increasing length ---
        for group in by_len.iter().skip(2) {
            for &raw in group {
                let id = ClassifierId(raw);
                let c = raw as usize;
                if ws.selected[c] || ws.relevant_count[c] == 0 {
                    continue;
                }
                let Some((q, m)) = ws.occurrences(id).next() else {
                    continue;
                };
                let best = cheapest_decomposition(ws, q as usize, m);
                if ws.removed[c] {
                    // keep the recorded replacement fresh (it may have
                    // become cheaper after later selections)
                    if best < ws.eff[c] {
                        ws.eff[c] = best;
                        changed = true;
                    }
                } else if best <= ws.weight[c] {
                    ws.remove(id, best);
                    stats.removed_by_decomposition += 1;
                    mc3_telemetry::span_add(mc3_telemetry::Counter::PreObs33Removed, 1);
                    changed = true;
                } else {
                    ws.eff[c] = ws.weight[c];
                }
            }
        }

        // --- line 10: forced classifiers ---
        changed |= select_forced(ws, stats)?;

        if !changed {
            break;
        }
    }
    Ok(())
}

/// The cheapest pair `(A, B)` of proper sub-classifiers of the classifier at
/// local mask `m` of query `q` with `A ∪ B` equal to it, priced by effective
/// weights.
fn cheapest_decomposition(ws: &WorkState<'_>, q: usize, m: u32) -> Weight {
    let local = ws.universe.query_local(q);
    let mut best = Weight::INFINITE;
    // a iterates over proper non-empty submasks of m
    let mut a = (m - 1) & m;
    while a > 0 {
        let wa = ws.eff[local.table[a as usize].index()];
        if wa < best {
            // b = (m \ a) ∪ extra for every extra ⊊ a
            let r = m & !a;
            let mut extra = (a - 1) & a;
            loop {
                let b = r | extra;
                let wb = ws.eff[local.table[b as usize].index()];
                let total = wa.saturating_add(wb);
                if total < best {
                    best = total;
                }
                if extra == 0 {
                    break;
                }
                extra = (extra - 1) & a;
            }
        }
        a = (a - 1) & m;
    }
    best
}

/// Per-property forcing: if a needed property of an alive query is contained
/// in exactly one usable classifier fitting the query, select it.
fn select_forced(ws: &mut WorkState<'_>, stats: &mut PreprocessStats) -> Result<bool> {
    let mut changed = false;
    let nq = ws.instance.num_queries();
    let mut count = [0u32; mc3_core::MAX_QUERY_LEN];
    let mut last = [0u32; mc3_core::MAX_QUERY_LEN];
    for q in 0..nq {
        if !ws.alive[q] {
            continue;
        }
        let need = ws.need(q);
        if need == 0 {
            ws.kill_query(q);
            continue;
        }
        let local = ws.universe.query_local(q);
        let len = local.len;
        count[..len].iter_mut().for_each(|c| *c = 0);
        for mask in 1..u32_of(local.table.len()) {
            let id = local.table[mask as usize];
            if id.is_none() || !ws.is_usable(id) {
                continue;
            }
            let mut bits = mask & need;
            while bits != 0 {
                let b = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                count[b] += 1;
                last[b] = mask;
            }
        }
        let mut to_select: Option<u32> = None;
        let mut bits = need;
        while bits != 0 {
            let b = bits.trailing_zeros() as usize;
            bits &= bits - 1;
            match count[b] {
                0 => return Err(Mc3Error::Uncoverable { query_index: q }),
                1 => {
                    to_select = Some(last[b]);
                    break; // select one; coverage may change the rest
                }
                _ => {}
            }
        }
        if let Some(mask) = to_select {
            let id = ws.universe.query_local(q).table[mask as usize];
            ws.select(id);
            stats.selected += 1;
            mc3_telemetry::span_add(mc3_telemetry::Counter::PreObs33Forced, 1);
            changed = true;
        }
    }
    Ok(changed)
}

/// Step 4 (`k ≤ 2`): replace a singleton by the pair classifiers
/// intersecting it when those cost no more in total. Guard: every alive
/// query containing the property must have a usable pair classifier,
/// otherwise removing the singleton could destroy coverability.
fn step4(ws: &mut WorkState<'_>, stats: &mut PreprocessStats) {
    use mc3_core::fxhash::FxHashMap;

    #[derive(Default)]
    struct PropInfo {
        singleton: Option<ClassifierId>,
        pairs: Vec<ClassifierId>,
        /// some alive query with this property lacks a usable pair classifier
        blocked: bool,
        /// the partner property of each pair (for the chain reaction)
        partners: Vec<u32>,
    }

    let mut info: FxHashMap<u32, PropInfo> = FxHashMap::default();
    for q in 0..ws.instance.num_queries() {
        if !ws.alive[q] {
            continue;
        }
        let local = ws.universe.query_local(q);
        if local.len != 2 {
            continue;
        }
        let props = ws.instance.queries()[q].ids();
        let (p0, p1) = (props[0].0, props[1].0);
        let s0 = local.table[0b01];
        let s1 = local.table[0b10];
        let pair = local.table[0b11];
        let pair_usable = !pair.is_none() && ws.is_usable(pair);
        {
            let e0 = info.entry(p0).or_default();
            if ws.is_usable(s0) {
                e0.singleton = Some(s0);
            }
            if pair_usable {
                e0.pairs.push(pair);
                e0.partners.push(p1);
            } else {
                e0.blocked = true;
            }
        }
        {
            let e1 = info.entry(p1).or_default();
            if ws.is_usable(s1) {
                e1.singleton = Some(s1);
            }
            if pair_usable {
                e1.pairs.push(pair);
                e1.partners.push(p0);
            } else {
                e1.blocked = true;
            }
        }
    }

    let mut worklist: Vec<u32> = info.keys().copied().collect();
    worklist.sort_unstable(); // determinism
    let mut queued: mc3_core::FxHashSet<u32> = worklist.iter().copied().collect();

    while let Some(p) = worklist.pop() {
        queued.remove(&p);
        let Some(pi) = info.get(&p) else { continue };
        if pi.blocked {
            continue;
        }
        let Some(singleton) = pi.singleton else {
            continue;
        };
        if !ws.is_usable(singleton) || ws.selected[singleton.index()] {
            continue;
        }
        let pair_total: Weight = pi.pairs.iter().map(|&c| ws.weight[c.index()]).sum();
        if pair_total <= ws.weight[singleton.index()] {
            let pairs = pi.pairs.clone();
            let partners = pi.partners.clone();
            for &pair in &pairs {
                if !ws.selected[pair.index()] && ws.is_usable(pair) {
                    ws.select(pair);
                    stats.selected += 1;
                }
            }
            ws.remove(singleton, Weight::INFINITE);
            stats.removed_by_singleton_pruning += 1;
            mc3_telemetry::span_add(mc3_telemetry::Counter::PreObs34Pruned, 1);
            // chain reaction: partners' sums just dropped to 0 for these pairs
            for partner in partners {
                if queued.insert(partner) {
                    worklist.push(partner);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mc3_core::{ClassifierUniverse, Instance, PropSet, Weights, WeightsBuilder};

    fn ws_for(instance: &Instance) -> WorkState<'_> {
        let u = ClassifierUniverse::build(instance);
        WorkState::new(instance, u)
    }

    fn ps(ids: &[u32]) -> PropSet {
        PropSet::from_ids(ids.iter().copied())
    }

    #[test]
    fn step1_selects_singleton_queries_and_covers() {
        let instance =
            Instance::new(vec![vec![0u32], vec![0u32, 1]], Weights::uniform(3u64)).unwrap();
        let mut ws = ws_for(&instance);
        let stats = preprocess(&mut ws, &PreprocessOptions::default()).unwrap();
        // X selected (singleton query) covers {0}; with X now free, Step 3
        // prices the decomposition {X, Y} of XY at 3 ≤ W(XY) and removes
        // XY, which forces Y for the remaining property.
        assert!(stats.selected >= 2);
        let x = ws.universe.id_of(&ps(&[0])).unwrap();
        let y = ws.universe.id_of(&ps(&[1])).unwrap();
        let xy = ws.universe.id_of(&ps(&[0, 1])).unwrap();
        assert!(ws.selected[x.index()]);
        assert!(ws.selected[y.index()]);
        assert!(ws.removed[xy.index()]);
        assert_eq!(ws.base_cost, Weight::new(6));
        assert_eq!(ws.alive_queries(), 0);
    }

    #[test]
    fn step1_selects_zero_weight_classifiers() {
        let w = WeightsBuilder::new()
            .classifier([0u32], 0u64)
            .classifier([1u32], 5u64)
            .classifier([0u32, 1], 4u64)
            .build();
        let instance = Instance::new(vec![vec![0u32, 1]], w).unwrap();
        let mut ws = ws_for(&instance);
        preprocess(&mut ws, &PreprocessOptions::default()).unwrap();
        let x = ws.universe.id_of(&ps(&[0])).unwrap();
        assert!(ws.selected[x.index()]);
        // after X is free the query still needs y, coverable by Y (5) or XY
        // (4); Step 4 (k=2) then replaces Y with the cheaper pair set {XY}.
        assert_eq!(ws.base_cost, Weight::new(4));
        assert_eq!(ws.alive_queries(), 0);
        let y = ws.universe.id_of(&ps(&[1])).unwrap();
        assert!(ws.removed[y.index()]);
    }

    #[test]
    fn step3_removes_dominated_classifier() {
        // W(X)=W(Y)=1, W(XY)=3 → XY removed (illustration of Obs. 3.3)
        let w = WeightsBuilder::new()
            .classifier([0u32], 1u64)
            .classifier([1u32], 1u64)
            .classifier([0u32, 1], 3u64)
            .build();
        let instance = Instance::new(vec![vec![0u32, 1]], w).unwrap();
        let mut ws = ws_for(&instance);
        let stats = preprocess(&mut ws, &PreprocessOptions::default()).unwrap();
        let xy = ws.universe.id_of(&ps(&[0, 1])).unwrap();
        assert!(ws.removed[xy.index()]);
        // the recorded replacement starts at W(X)+W(Y) = 2 and may be
        // refreshed downward once the forced selections zero those weights
        assert!(ws.eff[xy.index()] <= Weight::new(2));
        assert_eq!(stats.removed_by_decomposition, 1);
        // with XY gone, X and Y are forced
        let x = ws.universe.id_of(&ps(&[0])).unwrap();
        let y = ws.universe.id_of(&ps(&[1])).unwrap();
        assert!(ws.selected[x.index()] && ws.selected[y.index()]);
        assert_eq!(ws.base_cost, Weight::new(2));
        assert_eq!(ws.alive_queries(), 0);
    }

    #[test]
    fn step3_keeps_cheap_combined_classifier() {
        // W(X)=W(Y)=5, W(XY)=3 → XY kept; singletons not removable (no decomposition)
        let w = WeightsBuilder::new()
            .classifier([0u32], 5u64)
            .classifier([1u32], 5u64)
            .classifier([0u32, 1], 3u64)
            .build();
        let instance = Instance::new(vec![vec![0u32, 1]], w).unwrap();
        let mut ws = ws_for(&instance);
        preprocess(&mut ws, &PreprocessOptions::default()).unwrap();
        let xy = ws.universe.id_of(&ps(&[0, 1])).unwrap();
        assert!(!ws.removed[xy.index()]);
    }

    #[test]
    fn step3_recursive_decomposition() {
        // Cheap singletons dominate every longer classifier: all pairs and
        // the triple are removed (each decomposes into singletons at equal
        // or lower cost, recursively through removed pairs), after which
        // the three singletons are forced and cover the query.
        let w = WeightsBuilder::new()
            .classifier([0u32], 1u64)
            .classifier([1u32], 1u64)
            .classifier([2u32], 1u64)
            .classifier([0u32, 1], 2u64) // X+Y = 2 ≤ 2 → removed
            .classifier([0u32, 2], 9u64) // X+Z = 2 ≤ 9 → removed
            .classifier([1u32, 2], 9u64)
            .classifier([0u32, 1, 2], 3u64) // e.g. XY(eff 2) + Z(1) = 3 ≤ 3 → removed
            .build();
        let instance = Instance::new(vec![vec![0u32, 1, 2]], w).unwrap();
        let mut ws = ws_for(&instance);
        let stats = preprocess(&mut ws, &PreprocessOptions::default()).unwrap();
        let xyz = ws.universe.id_of(&ps(&[0, 1, 2])).unwrap();
        assert!(ws.removed[xyz.index()]);
        assert_eq!(stats.removed_by_decomposition, 4);
        assert_eq!(ws.base_cost, Weight::new(3)); // forced X, Y, Z
        assert_eq!(ws.alive_queries(), 0);
    }

    #[test]
    fn step3_uses_recursive_replacement_costs() {
        // Z is expensive, so the only cheap route to XYZ is via the removed
        // XY (eff 2) plus Z — the recursive replacement must price XY at 2,
        // not at its original weight 6.
        let w = WeightsBuilder::new()
            .classifier([0u32], 1u64)
            .classifier([1u32], 1u64)
            .classifier([2u32], 4u64)
            .classifier([0u32, 1], 6u64) // removed: X+Y = 2 ≤ 6, eff 2
            .classifier([0u32, 2], 20u64)
            .classifier([1u32, 2], 20u64)
            .classifier([0u32, 1, 2], 6u64) // XY(eff 2) + Z(4) = 6 ≤ 6 → removed
            .build();
        let instance = Instance::new(vec![vec![0u32, 1, 2]], w).unwrap();
        let mut ws = ws_for(&instance);
        preprocess(&mut ws, &PreprocessOptions::default()).unwrap();
        let xy = ws.universe.id_of(&ps(&[0, 1])).unwrap();
        let xyz = ws.universe.id_of(&ps(&[0, 1, 2])).unwrap();
        assert!(ws.removed[xy.index()]);
        assert!(
            ws.removed[xyz.index()],
            "XYZ must fall to the recursive decomposition via removed XY"
        );
    }

    #[test]
    fn forced_selection_detects_unique_cover() {
        // query {0,1}: only X and XY have finite weight; Y absent (infinite).
        // Property 1 (y) is only covered by XY → XY forced, covers query.
        let w = WeightsBuilder::new()
            .classifier([0u32], 1u64)
            .classifier([0u32, 1], 7u64)
            .build();
        let instance = Instance::new(vec![vec![0u32, 1]], w).unwrap();
        let mut ws = ws_for(&instance);
        preprocess(&mut ws, &PreprocessOptions::default()).unwrap();
        let xy = ws.universe.id_of(&ps(&[0, 1])).unwrap();
        assert!(ws.selected[xy.index()]);
        assert_eq!(ws.alive_queries(), 0);
        assert_eq!(ws.base_cost, Weight::new(7));
    }

    #[test]
    fn uncoverable_property_reported() {
        // property 1 appears in no finite-weight classifier
        let w = WeightsBuilder::new().classifier([0u32], 1u64).build();
        let instance = Instance::new(vec![vec![0u32, 1]], w).unwrap();
        let mut ws = ws_for(&instance);
        let err = preprocess(&mut ws, &PreprocessOptions::default()).unwrap_err();
        assert!(matches!(err, Mc3Error::Uncoverable { query_index: 0 }));
    }

    #[test]
    fn step4_replaces_expensive_singleton_with_pairs() {
        // x in queries {x,y} and {x,z}; W(X)=10, pairs cost 3+3=6 ≤ 10 →
        // select XY, XZ, remove X; queries die.
        let w = WeightsBuilder::new()
            .classifier([0u32], 10u64)
            .classifier([1u32], 10u64)
            .classifier([2u32], 10u64)
            .classifier([0u32, 1], 3u64)
            .classifier([0u32, 2], 3u64)
            .build();
        let instance = Instance::new(vec![vec![0u32, 1], vec![0u32, 2]], w).unwrap();
        let mut ws = ws_for(&instance);
        let stats = preprocess(&mut ws, &PreprocessOptions::default()).unwrap();
        assert_eq!(ws.alive_queries(), 0);
        assert_eq!(ws.base_cost, Weight::new(6));
        assert!(stats.removed_by_singleton_pruning >= 1);
    }

    #[test]
    fn disabled_options_do_nothing() {
        let instance =
            Instance::new(vec![vec![0u32], vec![1u32, 2]], Weights::uniform(1u64)).unwrap();
        let mut ws = ws_for(&instance);
        let stats = preprocess(&mut ws, &PreprocessOptions::disabled()).unwrap();
        assert_eq!(stats.selected, 0);
        assert_eq!(ws.alive_queries(), 2);
        assert_eq!(ws.base_cost, Weight::ZERO);
    }

    #[test]
    fn preprocessing_preserves_optimal_cost_on_paper_example() {
        // Example 1.1: optimum {AC, AJ, W} = 7
        // props: j=0, w=1, a=2, c=3
        let w = WeightsBuilder::new()
            .classifier([3u32], 5u64)
            .classifier([2u32], 5u64)
            .classifier([0u32], 5u64)
            .classifier([1u32], 1u64)
            .classifier([2u32, 3], 3u64)
            .classifier([1u32, 2], 5u64)
            .classifier([0u32, 2], 3u64)
            .classifier([0u32, 1], 4u64)
            .classifier([0u32, 1, 2], 5u64)
            .build();
        let instance = Instance::new(vec![vec![0u32, 1, 2], vec![2u32, 3]], w).unwrap();
        let mut ws = ws_for(&instance);
        preprocess(&mut ws, &PreprocessOptions::default()).unwrap();
        // preprocessing must not push the reachable optimum above 7:
        // verify no selected classifier set costs more than 7 and the
        // residual remains coverable within 7 - base.
        assert!(ws.base_cost <= Weight::new(7));
    }
}
