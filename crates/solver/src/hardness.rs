//! The approximation-hardness reductions of §5.1, implemented as
//! instance constructors.
//!
//! * [`reduce_set_cover_theorem_5_1`] — the approximation-preserving
//!   reduction from (unweighted) Set Cover to MC³ behind Theorem 5.1:
//!   every SC set becomes a *set-property*, every element becomes a query
//!   containing its sets' properties plus one shared special property `e`;
//!   classifiers of length 2 over two set-properties cost 0, classifiers
//!   pairing `e` with a set-property cost 1, everything else is omitted
//!   (infinite). Solutions correspond one-to-one, preserving cost.
//! * [`reduce_set_cover_theorem_5_2`] — the reduction behind Theorem 5.2
//!   (NP-hardness in `k` even for `n = 1`): a single query with one property
//!   per SC element, and one unit-cost classifier per SC set.
//!
//! Besides documenting the theory, these give the test-suite *structured*
//! hard instances on which solver behaviour is checked against the known
//! SC optimum.

use mc3_core::u32_of;
use mc3_core::{Instance, PropId, PropSet, Result, Solution, Weight, WeightsBuilder};

/// An unweighted Set Cover instance: `sets[i]` lists the elements
/// (0-based, `< num_elements`) of set `i`.
#[derive(Debug, Clone)]
pub struct SetCoverInput {
    /// Universe size.
    pub num_elements: usize,
    /// The sets.
    pub sets: Vec<Vec<u32>>,
}

impl SetCoverInput {
    /// Whether `selected` (set indices) covers the universe.
    pub fn is_cover(&self, selected: &[usize]) -> bool {
        let mut covered = vec![false; self.num_elements];
        for &s in selected {
            for &e in &self.sets[s] {
                covered[e as usize] = true;
            }
        }
        covered.into_iter().all(|c| c)
    }

    /// Brute-force SC optimum (for small inputs).
    pub fn brute_force_optimum(&self) -> Option<usize> {
        let m = self.sets.len();
        assert!(m <= 20, "brute force limited to 20 sets");
        let mut best: Option<usize> = None;
        for mask in 0u32..(1 << m) {
            let selected: Vec<usize> = (0..m).filter(|&s| mask & (1 << s) != 0).collect();
            if self.is_cover(&selected) {
                let size = selected.len();
                if best.is_none_or(|b| size < b) {
                    best = Some(size);
                }
            }
        }
        best
    }
}

/// Output of the Theorem 5.1 reduction.
#[derive(Debug)]
pub struct Theorem51Reduction {
    /// The constructed MC³ instance.
    pub instance: Instance,
    /// Property id of each SC set (`set-properties`).
    pub set_props: Vec<PropId>,
    /// The shared special property `e`.
    pub e_prop: PropId,
}

/// Builds the Theorem 5.1 instance from a Set Cover input where every
/// element belongs to at least one set. Parameters transfer as
/// `k = f + 1` and `I = Δ` (with `f`/`Δ` the SC frequency/degree).
///
/// ```
/// use mc3_solver::hardness::{reduce_set_cover_theorem_5_1, SetCoverInput};
/// use mc3_solver::{Algorithm, Mc3Solver};
///
/// // a triangle: SC optimum is 2 sets
/// let sc = SetCoverInput {
///     num_elements: 3,
///     sets: vec![vec![0, 1], vec![1, 2], vec![0, 2]],
/// };
/// let red = reduce_set_cover_theorem_5_1(&sc).unwrap();
/// let sol = Mc3Solver::new().algorithm(Algorithm::Exact).solve(&red.instance).unwrap();
/// assert_eq!(sol.cost().raw(), 2);
/// assert!(sc.is_cover(&red.extract_set_cover(&sol)));
/// ```
pub fn reduce_set_cover_theorem_5_1(sc: &SetCoverInput) -> Result<Theorem51Reduction> {
    let num_sets = u32_of(sc.sets.len());
    let e_prop = PropId(num_sets); // set-properties are 0..num_sets
    let set_props: Vec<PropId> = (0..num_sets).map(PropId).collect();

    // element → the sets containing it
    let mut member_sets: Vec<Vec<u32>> = vec![Vec::new(); sc.num_elements];
    for (s, els) in sc.sets.iter().enumerate() {
        for &e in els {
            member_sets[e as usize].push(u32_of(s));
        }
    }

    let mut weights = WeightsBuilder::new(); // absent ⇒ infinite
    let mut queries: Vec<PropSet> = Vec::with_capacity(sc.num_elements);
    for sets in &member_sets {
        debug_assert!(!sets.is_empty(), "SC element in no set");
        let mut props: Vec<PropId> = sets.iter().map(|&s| PropId(s)).collect();
        props.push(e_prop);
        queries.push(PropSet::from_ids(props.iter().map(|p| p.0)));
        // weight-0 pairs of set-properties within this query
        for (i, &a) in sets.iter().enumerate() {
            for &b in &sets[i + 1..] {
                weights.insert(PropSet::from_ids([a, b]), Weight::ZERO);
            }
        }
        // weight-1 pairs (e, set-property)
        for &s in sets {
            weights.insert(PropSet::from_ids([s, e_prop.0]), Weight::new(1));
        }
    }
    // Degenerate case: an element in exactly one set yields a query
    // {s, e} whose only-0-cost option does not exist; the (e, s) pair of
    // weight 1 covers it together with... nothing else — the pair IS the
    // full query, which is fine.
    let instance = Instance::from_propsets(queries, weights.build())?;
    Ok(Theorem51Reduction {
        instance,
        set_props,
        e_prop,
    })
}

impl Theorem51Reduction {
    /// Translates an MC³ solution back to a Set Cover solution (the sets
    /// whose `(e, set-property)` classifier was selected); both have the
    /// same cost.
    pub fn extract_set_cover(&self, solution: &Solution) -> Vec<usize> {
        let mut picked = Vec::new();
        for c in solution.classifiers() {
            if c.len() == 2 && c.contains(self.e_prop) {
                if let Some(other) = c.iter().find(|&p| p != self.e_prop) {
                    picked.push(other.0 as usize);
                }
            }
        }
        picked.sort_unstable();
        picked.dedup();
        picked
    }
}

/// Builds the Theorem 5.2 instance: one query of length `num_elements`, one
/// unit-cost classifier per SC set (all other classifiers omitted). The MC³
/// optimum equals the SC optimum.
pub fn reduce_set_cover_theorem_5_2(sc: &SetCoverInput) -> Result<Instance> {
    let query: Vec<u32> = (0..u32_of(sc.num_elements)).collect();
    let mut weights = WeightsBuilder::new();
    for els in &sc.sets {
        weights.insert(PropSet::from_ids(els.iter().copied()), Weight::new(1));
    }
    Instance::new(vec![query], weights.build())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::{Algorithm, Mc3Solver};

    fn triangle_sc() -> SetCoverInput {
        // elements 0,1,2; sets {0,1}, {1,2}, {0,2} — optimum 2
        SetCoverInput {
            num_elements: 3,
            sets: vec![vec![0, 1], vec![1, 2], vec![0, 2]],
        }
    }

    #[test]
    fn theorem_5_1_reduction_shape() {
        let sc = triangle_sc();
        let red = reduce_set_cover_theorem_5_1(&sc).unwrap();
        // one query per element, each of length f(e) + 1 = 3
        assert_eq!(red.instance.num_queries(), 3);
        assert!(red.instance.queries().iter().all(|q| q.len() == 3));
        // every query contains e
        assert!(red
            .instance
            .queries()
            .iter()
            .all(|q| q.contains(red.e_prop)));
    }

    #[test]
    fn theorem_5_1_preserves_the_optimum() {
        let sc = triangle_sc();
        let red = reduce_set_cover_theorem_5_1(&sc).unwrap();
        let exact = Mc3Solver::new()
            .algorithm(Algorithm::Exact)
            .solve(&red.instance)
            .unwrap();
        exact.verify(&red.instance).unwrap();
        let sc_opt = sc.brute_force_optimum().unwrap() as u64;
        assert_eq!(exact.cost().raw(), sc_opt);
        // and the extracted cover is a genuine SC cover of the same size
        let cover = red.extract_set_cover(&exact);
        assert!(sc.is_cover(&cover));
        assert_eq!(cover.len() as u64, exact.cost().raw());
    }

    #[test]
    fn theorem_5_1_on_random_instances() {
        use mc3_core::rng::prelude::*;
        let mut rng = StdRng::seed_from_u64(51);
        for _ in 0..20 {
            let n = rng.gen_range(2..=5usize);
            let m = rng.gen_range(2..=5usize);
            let mut sets: Vec<Vec<u32>> = (0..m)
                .map(|_| (0..n as u32).filter(|_| rng.gen_bool(0.5)).collect())
                .collect();
            // ensure every element is covered somewhere
            for e in 0..n as u32 {
                if !sets.iter().any(|s| s.contains(&e)) {
                    sets[0].push(e);
                }
            }
            for s in &mut sets {
                s.sort_unstable();
                s.dedup();
            }
            let sets: Vec<Vec<u32>> = sets.into_iter().filter(|s| !s.is_empty()).collect();
            let sc = SetCoverInput {
                num_elements: n,
                sets,
            };
            let red = reduce_set_cover_theorem_5_1(&sc).unwrap();
            let exact = Mc3Solver::new()
                .algorithm(Algorithm::Exact)
                .solve(&red.instance)
                .unwrap();
            assert_eq!(
                exact.cost().raw(),
                sc.brute_force_optimum().unwrap() as u64,
                "SC ↔ MC3 optimum mismatch for {sc:?}"
            );
            let cover = red.extract_set_cover(&exact);
            assert!(sc.is_cover(&cover));
        }
    }

    #[test]
    fn theorem_5_1_general_solver_stays_within_guarantee() {
        let sc = triangle_sc();
        let red = reduce_set_cover_theorem_5_1(&sc).unwrap();
        let report = Mc3Solver::new()
            .algorithm(Algorithm::General)
            .solve_report(&red.instance)
            .unwrap();
        report.solution.verify(&red.instance).unwrap();
        let opt = sc.brute_force_optimum().unwrap() as f64;
        assert!(
            report.solution.cost().raw() as f64
                <= report.instance_stats.approximation_guarantee() * opt + 1e-9
        );
    }

    #[test]
    fn theorem_5_2_single_query_matches_sc_optimum() {
        let sc = triangle_sc();
        let instance = reduce_set_cover_theorem_5_2(&sc).unwrap();
        assert_eq!(instance.num_queries(), 1);
        assert_eq!(instance.max_query_len(), 3);
        let exact = Mc3Solver::new()
            .algorithm(Algorithm::Exact)
            .solve(&instance)
            .unwrap();
        assert_eq!(exact.cost().raw(), 2);
    }

    #[test]
    fn theorem_5_2_on_random_instances() {
        use mc3_core::rng::prelude::*;
        let mut rng = StdRng::seed_from_u64(52);
        for _ in 0..20 {
            let n = rng.gen_range(2..=6usize);
            let m = rng.gen_range(2..=6usize);
            let mut sets: Vec<Vec<u32>> = (0..m)
                .map(|_| (0..n as u32).filter(|_| rng.gen_bool(0.6)).collect())
                .collect();
            for e in 0..n as u32 {
                if !sets.iter().any(|s| s.contains(&e)) {
                    sets[0].push(e);
                }
            }
            let sets: Vec<Vec<u32>> = sets
                .into_iter()
                .map(|mut s| {
                    s.sort_unstable();
                    s.dedup();
                    s
                })
                .filter(|s| !s.is_empty())
                .collect();
            let sc = SetCoverInput {
                num_elements: n,
                sets,
            };
            let instance = reduce_set_cover_theorem_5_2(&sc).unwrap();
            let exact = Mc3Solver::new()
                .algorithm(Algorithm::Exact)
                .solve(&instance)
                .unwrap();
            assert_eq!(exact.cost().raw(), sc.brute_force_optimum().unwrap() as u64);
        }
    }
}
