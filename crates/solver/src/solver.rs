//! The top-level solver facade: configuration, the solving pipeline
//! (universe → preprocessing → component split → per-component core
//! algorithm → solution assembly) and the Short-First heuristic.

use crate::baselines;
use crate::components::connected_components;
use crate::exact;
use crate::general::{LpLimits, WscStrategy};
use crate::k2::solve_k2_with;
use crate::preprocess::{preprocess, PreprocessOptions, PreprocessStats};
use crate::work::WorkState;
use mc3_core::{ClassifierId, ClassifierUniverse, Instance, InstanceStats, Result, Solution};
use mc3_telemetry::TimedSpan;
use std::time::Duration;

thread_local! {
    /// Per-worker reduction scratch. Executor workers live for the whole
    /// process, so the CSR buffers now persist across components *and*
    /// across solves — strictly more reuse than the old per-request
    /// worker threads got.
    static SCRATCH: std::cell::RefCell<crate::reduction::ReductionScratch> =
        std::cell::RefCell::new(crate::reduction::ReductionScratch::new());
}

/// Which algorithm to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Algorithm {
    /// `MC3[S]` (Algorithm 2) when `k ≤ 2`, otherwise `MC3[G]`
    /// (Algorithm 3).
    #[default]
    Auto,
    /// The exact PTIME solver for `k ≤ 2` (Algorithm 2); errors on longer
    /// queries.
    K2Exact,
    /// The general approximation solver (Algorithm 3).
    General,
    /// Algorithm 2 on the length-≤2 queries, Algorithm 3 on the residual
    /// (§4, "Almost k = 2").
    ShortFirst,
    /// Exponential-time exact reference solver.
    Exact,
    /// Baseline: all singleton classifiers.
    PropertyOriented,
    /// Baseline: one classifier per query.
    QueryOriented,
    /// Baseline of \[13\]: uniform costs, `k ≤ 2`, matching-based.
    Mixed,
    /// Baseline: iterated cheapest-single-query covering.
    LocalGreedy,
}

impl Algorithm {
    /// Canonical wire name, shared by the CLI's `--algorithm` vocabulary,
    /// bench-gate baselines and the server's `/solve` request field.
    pub fn name(self) -> &'static str {
        match self {
            Algorithm::Auto => "auto",
            Algorithm::K2Exact => "k2",
            Algorithm::General => "general",
            Algorithm::ShortFirst => "short-first",
            Algorithm::Exact => "exact",
            Algorithm::PropertyOriented => "property-oriented",
            Algorithm::QueryOriented => "query-oriented",
            Algorithm::Mixed => "mixed",
            Algorithm::LocalGreedy => "local-greedy",
        }
    }

    /// Parses a wire name (plus the short aliases `po`/`qo`/`lg`) back
    /// into an algorithm.
    pub fn parse_name(s: &str) -> std::result::Result<Algorithm, String> {
        match s {
            "auto" => Ok(Algorithm::Auto),
            "k2" => Ok(Algorithm::K2Exact),
            "general" => Ok(Algorithm::General),
            "short-first" => Ok(Algorithm::ShortFirst),
            "exact" => Ok(Algorithm::Exact),
            "property-oriented" | "po" => Ok(Algorithm::PropertyOriented),
            "query-oriented" | "qo" => Ok(Algorithm::QueryOriented),
            "mixed" => Ok(Algorithm::Mixed),
            "local-greedy" | "lg" => Ok(Algorithm::LocalGreedy),
            other => Err(format!("unknown algorithm '{other}'")),
        }
    }
}

/// Full solver configuration.
#[derive(Debug, Clone)]
pub struct SolverConfig {
    /// Algorithm selection.
    pub algorithm: Algorithm,
    /// Preprocessing steps (Algorithm 1) to apply.
    pub preprocess: PreprocessOptions,
    /// WSC strategy for Algorithm 3.
    pub wsc_strategy: WscStrategy,
    /// Size thresholds for the simplex-based LP rounding path.
    pub lp_limits: LpLimits,
    /// Solve property-connected components on multiple threads
    /// (Observation 3.2: sub-instances are independent). Parallel solves
    /// run on the process-wide [`executor`](crate::executor) — one fixed
    /// worker set shared by every solve in the process, not a fresh
    /// thread set per call.
    pub parallel: bool,
    /// Requested worker count for the shared executor (`None` = number
    /// of cores). The executor is sized once, on the first parallel
    /// solve in the process; see [`executor::configure_threads`]
    /// (crate::executor::configure_threads). Excluded from the cache
    /// configuration digest: thread count never changes results.
    pub threads: Option<usize>,
    /// Consider only classifiers of length ≤ `k'` (§5.3, bounded
    /// classifiers); `None` = the full universe.
    pub max_classifier_len: Option<usize>,
    /// Apply the reverse-delete refinement to WSC outputs (an augmentation
    /// beyond the published Algorithm 3 that preserves all guarantees;
    /// disable to reproduce the paper's algorithm verbatim).
    pub refine_wsc: bool,
    /// Max-flow algorithm for Algorithm 2's WVC step (paper: Dinic).
    pub flow_algorithm: mc3_flow::FlowAlgorithm,
    /// Classifiers that are already built (incremental planning): their
    /// construction cost is sunk, so they participate in covers for free
    /// and the reported solution cost is the *marginal* cost of the new
    /// classifiers only. Prebuilt classifiers outside `C_Q` are ignored
    /// (they cannot participate in any cover).
    pub prebuilt: Vec<mc3_core::Classifier>,
    /// Memoization cache for per-component solves, shared across solver
    /// instances (and, in `mc3 serve`, across requests). `None` — the
    /// default — disables memoization entirely: the solve path is then
    /// byte-for-byte the uncached pipeline, which keeps `mc3 bench-gate`
    /// counters and allocations deterministic. Ignored when `prebuilt`
    /// is non-empty (inventory re-pricing is request-local).
    pub cache: Option<std::sync::Arc<crate::cache::SolveCache>>,
}

impl Default for SolverConfig {
    fn default() -> Self {
        SolverConfig {
            algorithm: Algorithm::Auto,
            preprocess: PreprocessOptions::default(),
            wsc_strategy: WscStrategy::Combined,
            lp_limits: LpLimits::default(),
            parallel: false,
            threads: None,
            max_classifier_len: None,
            refine_wsc: true,
            flow_algorithm: mc3_flow::FlowAlgorithm::Dinic,
            prebuilt: Vec::new(),
            cache: None,
        }
    }
}

/// Wall-clock breakdown of a solve.
///
/// Derived from the telemetry span tree (`solve` → `setup` /
/// `preprocess` / `solve_core`): each field is the exact duration stored
/// in the corresponding span node, so the tree and these public fields
/// can never disagree (see `docs/observability.md`).
#[derive(Debug, Clone, Copy, Default)]
pub struct SolveTimings {
    /// Universe enumeration + working-state construction.
    pub setup: Duration,
    /// Algorithm 1.
    pub preprocess: Duration,
    /// Core algorithm (including component split).
    pub solve: Duration,
    /// End-to-end.
    pub total: Duration,
}

/// A solution plus everything the experiments report about how it was found.
#[derive(Debug, Clone)]
pub struct SolverReport {
    /// The solution: the classifiers to construct, at their construction
    /// cost. With [`SolverConfig::prebuilt`] inventory this contains only
    /// the *new* classifiers (marginal cost); the full cover is
    /// [`SolverReport::full_cover`].
    pub solution: Solution,
    /// Prebuilt classifiers the solution relies on (empty without
    /// [`SolverConfig::prebuilt`]).
    pub prebuilt_used: Vec<mc3_core::Classifier>,
    /// Input-instance parameters.
    pub instance_stats: InstanceStats,
    /// Preprocessing counters (zeroed when preprocessing is disabled).
    pub preprocess_stats: PreprocessStats,
    /// Number of property-connected components of the residual problem.
    pub components: usize,
    /// Wall-clock breakdown.
    pub timings: SolveTimings,
}

impl SolverReport {
    /// The complete cover: the new classifiers plus the prebuilt ones they
    /// rely on. Verify with [`mc3_core::is_cover`].
    pub fn full_cover(&self) -> Vec<mc3_core::Classifier> {
        let mut all: Vec<mc3_core::Classifier> = self
            .solution
            .classifiers()
            .iter()
            .chain(self.prebuilt_used.iter())
            .cloned()
            .collect();
        all.sort_unstable();
        all.dedup();
        all
    }
}

/// The MC³ solver.
///
/// # Example
///
/// ```
/// use mc3_solver::{Algorithm, Mc3Solver};
/// use mc3_core::{Instance, Weights, Weight};
///
/// let instance = Instance::new(
///     vec![vec![0u32, 1], vec![1u32, 2]],
///     Weights::uniform(1u64),
/// ).unwrap();
/// let solution = Mc3Solver::new().solve(&instance).unwrap();
/// solution.verify(&instance).unwrap();
/// assert_eq!(solution.cost(), Weight::new(2)); // XY + YZ
/// ```
#[derive(Debug, Clone, Default)]
pub struct Mc3Solver {
    config: SolverConfig,
}

impl Mc3Solver {
    /// A solver with the default configuration ([`Algorithm::Auto`], full
    /// preprocessing, combined WSC strategy).
    pub fn new() -> Mc3Solver {
        Mc3Solver::default()
    }

    /// A solver with an explicit configuration.
    pub fn with_config(config: SolverConfig) -> Mc3Solver {
        Mc3Solver { config }
    }

    /// Sets the algorithm.
    pub fn algorithm(mut self, algorithm: Algorithm) -> Self {
        self.config.algorithm = algorithm;
        self
    }

    /// Sets the preprocessing options.
    pub fn preprocess(mut self, opts: PreprocessOptions) -> Self {
        self.config.preprocess = opts;
        self
    }

    /// Disables Algorithm 1 entirely (the ablation mode of §6.2).
    pub fn without_preprocessing(mut self) -> Self {
        self.config.preprocess = PreprocessOptions::disabled();
        self
    }

    /// Sets the WSC strategy used by Algorithm 3.
    pub fn wsc_strategy(mut self, strategy: WscStrategy) -> Self {
        self.config.wsc_strategy = strategy;
        self
    }

    /// Enables multi-threaded per-component solving.
    pub fn parallel(mut self, on: bool) -> Self {
        self.config.parallel = on;
        self
    }

    /// Requests `n` workers for the shared solve executor (0 = number of
    /// cores). Effective only before the executor's first use — the pool
    /// is process-wide and sized exactly once.
    pub fn threads(mut self, n: usize) -> Self {
        self.config.threads = if n == 0 { None } else { Some(n) };
        self
    }

    /// Restricts the classifier universe to length ≤ `k'` (§5.3).
    pub fn max_classifier_len(mut self, kp: usize) -> Self {
        self.config.max_classifier_len = Some(kp);
        self
    }

    /// Disables the reverse-delete refinement, running Algorithm 3 exactly
    /// as published.
    pub fn without_refinement(mut self) -> Self {
        self.config.refine_wsc = false;
        self
    }

    /// Declares classifiers as already built: they cost nothing in the
    /// produced solution, whose cost is then the marginal cost of covering
    /// the query load given this existing inventory.
    ///
    /// ```
    /// use mc3_solver::Mc3Solver;
    /// use mc3_core::{is_cover, Instance, PropSet, Weight, Weights};
    ///
    /// let instance = Instance::new(
    ///     vec![vec![0u32, 1], vec![1u32, 2]],
    ///     Weights::uniform(5u64),
    /// ).unwrap();
    /// let already_built = vec![PropSet::from_ids([0u32, 1])];
    /// let report = Mc3Solver::new()
    ///     .prebuilt(already_built)
    ///     .solve_report(&instance)
    ///     .unwrap();
    /// // only the second query still costs anything
    /// assert_eq!(report.solution.cost(), Weight::new(5));
    /// assert!(is_cover(&instance, &report.full_cover()));
    /// ```
    pub fn prebuilt(mut self, classifiers: Vec<mc3_core::Classifier>) -> Self {
        self.config.prebuilt = classifiers;
        self
    }

    /// Shares a [`SolveCache`](crate::cache::SolveCache): per-component
    /// solutions are memoized by canonical fingerprint and reused —
    /// after re-verification — whenever a structurally identical
    /// component shows up again, in this solve or any later solve
    /// holding the same cache.
    pub fn cache(mut self, cache: std::sync::Arc<crate::cache::SolveCache>) -> Self {
        self.config.cache = Some(cache);
        self
    }

    /// The active configuration.
    pub fn config(&self) -> &SolverConfig {
        &self.config
    }

    /// Solves and returns just the solution.
    pub fn solve(&self, instance: &Instance) -> Result<Solution> {
        self.solve_report(instance).map(|r| r.solution)
    }

    /// Solves and returns the full report.
    pub fn solve_report(&self, instance: &Instance) -> Result<SolverReport> {
        // The root span doubles as the end-to-end clock: `SolveTimings` is
        // read back out of the same `TimedSpan`s that build the telemetry
        // tree, so there are no independent `Instant` pairs to drift.
        let total_t = mc3_telemetry::timed_span("solve");
        // Baselines and the exact solver bypass the shared pipeline.
        match self.config.algorithm {
            Algorithm::PropertyOriented => {
                return self.baseline_report(instance, total_t, baselines::property_oriented)
            }
            Algorithm::QueryOriented => {
                return self.baseline_report(instance, total_t, baselines::query_oriented)
            }
            Algorithm::Mixed => return self.baseline_report(instance, total_t, baselines::mixed),
            Algorithm::LocalGreedy => {
                return self.baseline_report(instance, total_t, baselines::local_greedy)
            }
            Algorithm::Exact => {
                return self.baseline_report(instance, total_t, |i| {
                    exact::solve_exact_with(i, &self.config.preprocess)
                })
            }
            _ => {}
        }

        let setup_t = mc3_telemetry::timed_span("setup");
        let kp = self
            .config
            .max_classifier_len
            .unwrap_or_else(|| instance.max_query_len().max(1));
        let mut universe = ClassifierUniverse::build_bounded(instance, kp);
        for c in &self.config.prebuilt {
            if let Some(id) = universe.id_of(c) {
                universe.override_weight(id, mc3_core::Weight::ZERO);
            }
        }
        let instance_stats = InstanceStats::gather_with_universe(instance, &universe);
        let mut ws = WorkState::new(instance, universe);
        let setup = setup_t.finish();

        let pre_t = mc3_telemetry::timed_span("preprocess");
        let preprocess_stats = preprocess(&mut ws, &self.config.preprocess)?;
        let pre = pre_t.finish();

        let solve_t = mc3_telemetry::timed_span("solve_core");
        let mut picked: Vec<ClassifierId> = Vec::new();

        let effective = match self.config.algorithm {
            Algorithm::Auto => {
                if instance.max_query_len() <= 2 {
                    Algorithm::K2Exact
                } else {
                    Algorithm::General
                }
            }
            a => a,
        };

        if effective == Algorithm::ShortFirst {
            // Phase 1: Algorithm 2 over the short queries, committing its
            // selections so long queries benefit from the shared (now free)
            // classifiers.
            let short: Vec<usize> = ws
                .alive_query_indices()
                .into_iter()
                .filter(|&q| ws.universe.query_local(q).len <= 2)
                .collect();
            let ids = solve_k2_with(&ws, &short, self.config.flow_algorithm)?;
            for id in ids {
                ws.select(id);
            }
        }

        let alive = ws.alive_query_indices();
        let comps = connected_components(instance.queries(), &alive);
        let num_components = comps.len();
        mc3_obs::debug(
            "solver",
            "components split",
            &[
                ("components", comps.len().into()),
                ("alive_queries", alive.len().into()),
            ],
        );
        mc3_telemetry::count(mc3_telemetry::Counter::ComponentsSplit, comps.len() as u64);
        if mc3_telemetry::is_enabled() {
            for comp in &comps {
                mc3_telemetry::record(mc3_telemetry::Hist::ComponentSize, comp.len() as u64);
            }
        }

        // Cross-request memoization (opt-in): consulted per component,
        // keyed by canonical fingerprint + a config digest. Disabled with
        // a prebuilt inventory, whose zero re-pricing is request-local.
        let cache_ctx = if self.config.prebuilt.is_empty() {
            self.config
                .cache
                .as_ref()
                .map(|c| crate::cache::CacheContext {
                    cache: std::sync::Arc::clone(c),
                    digest: crate::cache::config_digest(effective, &self.config, kp),
                    kp,
                })
        } else {
            None
        };

        // The core dispatch, shared by both execution modes. Reductions
        // across components reuse one ReductionScratch per worker (or one
        // for the sequential loop) instead of reallocating both CSR
        // directions per component.
        let run_core = |comp: &[usize],
                        scratch: &mut crate::reduction::ReductionScratch|
         -> Result<Vec<ClassifierId>> {
            match effective {
                Algorithm::K2Exact => solve_k2_with(&ws, comp, self.config.flow_algorithm),
                Algorithm::General | Algorithm::ShortFirst => {
                    crate::general::solve_general_scratch(
                        &ws,
                        comp,
                        self.config.wsc_strategy,
                        self.config.lp_limits,
                        self.config.refine_wsc,
                        scratch,
                    )
                }
                _ => unreachable!("pipeline algorithms only"),
            }
        };

        if self.config.parallel && comps.len() > 1 {
            // Sizing request for the shared pool; once the pool exists the
            // running size wins by design, so the return value carries no
            // action for a solve.
            if let Some(n) = self.config.threads {
                crate::executor::configure_threads(n);
            }

            // Cache-aware dispatch plan. Fingerprint every component up
            // front (workers reuse the canonicalizations), then:
            //  - duplicate fingerprints within this request collapse onto
            //    one leader — followers re-consult the cache *after* their
            //    leader solved and inserted, so each shape is solved once
            //    and fanned out through the verified remap;
            //  - leaders already present in the cache ("hot") dispatch
            //    first, in component order: they are near-certain cheap
            //    remaps and drain quickly;
            //  - cold leaders and unfingerprintable components run
            //    largest-first so the expensive solves start immediately
            //    while small ones backfill idle workers.
            // Without a cache every component is its own cold leader, so
            // the plan degenerates to plain largest-first and the solved
            // sets are identical to the sequential loop's.
            let canonicals: Vec<Option<mc3_core::canon::Canonical>> = match &cache_ctx {
                Some(ctx) => comps
                    .iter()
                    .map(|c| crate::cache::component_canonical(&ws, c, ctx.kp))
                    .collect(),
                None => comps.iter().map(|_| None).collect(),
            };
            let mut followers: Vec<Vec<usize>> = vec![Vec::new(); comps.len()];
            let mut hot: Vec<usize> = Vec::new();
            let mut cold: Vec<usize> = Vec::new();
            {
                let mut leader_of: mc3_core::FxHashMap<u128, usize> =
                    mc3_core::FxHashMap::default();
                for i in 0..comps.len() {
                    let key = match (&cache_ctx, &canonicals[i]) {
                        (Some(ctx), Some(c)) => Some(crate::cache::component_key(c, ctx.digest)),
                        _ => None,
                    };
                    let Some(key) = key else {
                        cold.push(i);
                        continue;
                    };
                    match leader_of.entry(key) {
                        std::collections::hash_map::Entry::Occupied(leader) => {
                            followers[*leader.get()].push(i);
                        }
                        std::collections::hash_map::Entry::Vacant(slot) => {
                            slot.insert(i);
                            let likely_hit = cache_ctx
                                .as_ref()
                                .is_some_and(|ctx| ctx.cache.contains(key));
                            if likely_hit {
                                hot.push(i);
                            } else {
                                cold.push(i);
                            }
                        }
                    }
                }
            }
            // Descending size, index-stable: deterministic dispatch order.
            cold.sort_by_key(|&i| (usize::MAX - comps[i].len(), i));

            let results: Vec<std::sync::Mutex<Option<Result<Vec<ClassifierId>>>>> =
                comps.iter().map(|_| std::sync::Mutex::new(None)).collect();
            {
                let comps = &comps;
                let canonicals = &canonicals;
                let followers = &followers;
                let cache_ctx = &cache_ctx;
                let run_core = &run_core;
                let results = &results;
                let ws = &ws;
                // executor::scope waits for every spawned task and re-raises
                // the first worker panic, so no join-error plumbing is
                // needed — same contract the std::thread::scope version had.
                crate::executor::scope(|scope| {
                    for &i in hot.iter().chain(cold.iter()) {
                        scope.spawn(move || {
                            SCRATCH.with(|cell| {
                                let mut scratch = cell.borrow_mut();
                                let mut solve_one = |i: usize| {
                                    let comp: &[usize] = &comps[i];
                                    let r = match (cache_ctx, &canonicals[i]) {
                                        (Some(ctx), Some(canonical)) => ctx
                                            .solve_component_canonical(ws, comp, canonical, || {
                                                run_core(comp, &mut scratch)
                                            }),
                                        _ => run_core(comp, &mut scratch),
                                    };
                                    if let Ok(mut slot) = results[i].lock() {
                                        *slot = Some(r);
                                    }
                                };
                                solve_one(i);
                                for &f in &followers[i] {
                                    solve_one(f);
                                }
                            });
                        });
                    }
                });
            }
            for cell in results {
                let r = cell
                    .into_inner()
                    .map_err(|_| {
                        mc3_core::Mc3Error::Internal("component worker poisoned its result".into())
                    })?
                    .ok_or_else(|| {
                        mc3_core::Mc3Error::Internal("component result missing".into())
                    })?;
                picked.extend(r?);
            }
        } else {
            let mut scratch = crate::reduction::ReductionScratch::new();
            for comp in &comps {
                let r = match &cache_ctx {
                    Some(ctx) => ctx.solve_component(&ws, comp, || run_core(comp, &mut scratch)),
                    None => run_core(comp, &mut scratch),
                };
                picked.extend(r?);
            }
        }

        picked.extend(ws.selected_ids().iter().copied());

        // Separate the prebuilt inventory (sunk cost) from new selections so
        // the returned Solution stays consistent with the instance's weight
        // function: its cost is exactly the marginal construction cost.
        let mut prebuilt_ids: mc3_core::FxHashSet<u32> = mc3_core::FxHashSet::default();
        for c in &self.config.prebuilt {
            if let Some(id) = ws.universe.id_of(c) {
                prebuilt_ids.insert(id.0);
            }
        }
        let mut prebuilt_used: Vec<mc3_core::Classifier> = Vec::new();
        if !prebuilt_ids.is_empty() {
            picked.sort_unstable();
            picked.dedup();
            let (pre_ids, new_ids): (Vec<_>, Vec<_>) = picked
                .into_iter()
                .partition(|id| prebuilt_ids.contains(&id.0));
            prebuilt_used = pre_ids
                .into_iter()
                .map(|id| ws.universe.classifier(id).clone())
                .collect();
            prebuilt_used.sort_unstable();
            picked = new_ids;
        }
        let solution = Solution::from_ids(&ws.universe, picked);
        // End-to-end certificate (verify feature): rebuild per-query cover
        // witnesses and re-check feasibility and cost accounting from
        // scratch. A prebuilt inventory re-prices classifiers to zero, so
        // the instance-level cost recomputation only applies without one.
        #[cfg(feature = "verify")]
        if self.config.prebuilt.is_empty() {
            let _vspan = mc3_telemetry::span("verify.certificate");
            let cert = mc3_core::Certificate::for_solution(instance, &solution).map_err(|e| {
                mc3_core::Mc3Error::Internal(format!("certificate construction failed: {e}"))
            })?;
            cert.verify(instance, &solution).map_err(|e| {
                mc3_core::Mc3Error::Internal(format!("certificate verification failed: {e}"))
            })?;
            mc3_telemetry::span_add(mc3_telemetry::Counter::VerifyCertificateChecks, 1);
        }
        let solve = solve_t.finish();
        mc3_obs::info(
            "solver",
            "solve finished",
            &[
                ("cost", solution.cost().raw().into()),
                ("classifiers", solution.len().into()),
                ("components", num_components.into()),
            ],
        );

        Ok(SolverReport {
            solution,
            prebuilt_used,
            instance_stats,
            preprocess_stats,
            components: num_components,
            timings: SolveTimings {
                setup,
                preprocess: pre,
                solve,
                total: total_t.finish(),
            },
        })
    }

    // --- helpers -----------------------------------------------------------

    fn baseline_report(
        &self,
        instance: &Instance,
        total_t: TimedSpan,
        f: impl Fn(&Instance) -> Result<Solution>,
    ) -> Result<SolverReport> {
        let solution = f(instance)?;
        let total = total_t.finish();
        Ok(SolverReport {
            solution,
            prebuilt_used: Vec::new(),
            instance_stats: InstanceStats::gather(instance),
            preprocess_stats: PreprocessStats::default(),
            components: 0,
            timings: SolveTimings {
                setup: Duration::ZERO,
                preprocess: Duration::ZERO,
                solve: total,
                total,
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mc3_core::{Weight, Weights, WeightsBuilder};

    fn example_1_1() -> Instance {
        let w = WeightsBuilder::new()
            .classifier([3u32], 5u64)
            .classifier([2u32], 5u64)
            .classifier([0u32], 5u64)
            .classifier([1u32], 1u64)
            .classifier([2u32, 3], 3u64)
            .classifier([1u32, 2], 5u64)
            .classifier([0u32, 2], 3u64)
            .classifier([0u32, 1], 4u64)
            .classifier([0u32, 1, 2], 5u64)
            .build();
        Instance::new(vec![vec![0u32, 1, 2], vec![2u32, 3]], w).unwrap()
    }

    #[test]
    fn default_solver_reaches_paper_optimum() {
        let instance = example_1_1();
        let sol = Mc3Solver::new().solve(&instance).unwrap();
        sol.verify(&instance).unwrap();
        assert_eq!(sol.cost(), Weight::new(7));
    }

    #[test]
    fn k2_exact_matches_reference_exact() {
        use mc3_core::rng::prelude::*;
        let mut rng = StdRng::seed_from_u64(909);
        for round in 0..30 {
            let n = rng.gen_range(1..=8usize);
            let mut queries = Vec::new();
            for _ in 0..n {
                let len = rng.gen_range(1..=2usize);
                let props: Vec<u32> = (0..len).map(|_| rng.gen_range(0..7u32)).collect();
                queries.push(props);
            }
            let instance = Instance::new(queries.clone(), Weights::seeded(round, 1, 25)).unwrap();
            let k2 = Mc3Solver::new()
                .algorithm(Algorithm::K2Exact)
                .solve(&instance)
                .unwrap();
            k2.verify(&instance).unwrap();
            let exact = Mc3Solver::new()
                .algorithm(Algorithm::Exact)
                .solve(&instance)
                .unwrap();
            assert_eq!(k2.cost(), exact.cost(), "queries {queries:?} round {round}");
        }
    }

    #[test]
    fn k2_exact_without_preprocessing_still_optimal() {
        use mc3_core::rng::prelude::*;
        let mut rng = StdRng::seed_from_u64(911);
        for round in 0..20 {
            let n = rng.gen_range(1..=6usize);
            let mut queries = Vec::new();
            for _ in 0..n {
                let len = rng.gen_range(1..=2usize);
                let props: Vec<u32> = (0..len).map(|_| rng.gen_range(0..6u32)).collect();
                queries.push(props);
            }
            let instance = Instance::new(queries, Weights::seeded(round + 100, 1, 25)).unwrap();
            let a = Mc3Solver::new()
                .algorithm(Algorithm::K2Exact)
                .without_preprocessing()
                .solve(&instance)
                .unwrap();
            let b = Mc3Solver::new()
                .algorithm(Algorithm::K2Exact)
                .solve(&instance)
                .unwrap();
            a.verify(&instance).unwrap();
            assert_eq!(a.cost(), b.cost());
        }
    }

    #[test]
    fn general_stays_within_guarantee_on_random_instances() {
        use mc3_core::rng::prelude::*;
        let mut rng = StdRng::seed_from_u64(1234);
        for round in 0..25 {
            let n = rng.gen_range(1..=5usize);
            let mut queries = Vec::new();
            for _ in 0..n {
                let len = rng.gen_range(1..=4usize);
                let props: Vec<u32> = (0..len).map(|_| rng.gen_range(0..8u32)).collect();
                queries.push(props);
            }
            let instance = Instance::new(queries.clone(), Weights::seeded(round, 1, 20)).unwrap();
            let report = Mc3Solver::new()
                .algorithm(Algorithm::General)
                .solve_report(&instance)
                .unwrap();
            report.solution.verify(&instance).unwrap();
            let exact = Mc3Solver::new()
                .algorithm(Algorithm::Exact)
                .solve(&instance)
                .unwrap();
            let guarantee = report.instance_stats.approximation_guarantee();
            assert!(
                report.solution.cost().raw() as f64 <= guarantee * exact.cost().raw() as f64 + 1e-9,
                "cost {} > {guarantee:.2} × opt {} on {queries:?}",
                report.solution.cost(),
                exact.cost()
            );
        }
    }

    #[test]
    fn short_first_handles_mixed_lengths() {
        let w = WeightsBuilder::new()
            .default_weight(Weight::new(6))
            .classifier([0u32, 1], 2u64)
            .classifier([2u32], 1u64)
            .build();
        let instance = Instance::new(vec![vec![0u32, 1], vec![0u32, 1, 2]], w).unwrap();
        let sol = Mc3Solver::new()
            .algorithm(Algorithm::ShortFirst)
            .solve(&instance)
            .unwrap();
        sol.verify(&instance).unwrap();
        // XY (2) covers the short query; residual of the long one is z → Z (1)
        assert_eq!(sol.cost(), Weight::new(3));
    }

    #[test]
    fn parallel_and_sequential_agree() {
        use mc3_core::rng::prelude::*;
        let mut rng = StdRng::seed_from_u64(555);
        let mut queries = Vec::new();
        // several disjoint components
        for c in 0..6u32 {
            let base = c * 10;
            for _ in 0..4 {
                let len = rng.gen_range(1..=3usize);
                let props: Vec<u32> = (0..len).map(|_| base + rng.gen_range(0..5u32)).collect();
                queries.push(props);
            }
        }
        let instance = Instance::new(queries, Weights::seeded(1, 1, 20)).unwrap();
        let seq = Mc3Solver::new().solve(&instance).unwrap();
        let par = Mc3Solver::new().parallel(true).solve(&instance).unwrap();
        assert_eq!(seq.cost(), par.cost());
        assert_eq!(seq.classifiers(), par.classifiers());
    }

    #[test]
    fn bounded_universe_restricts_classifier_length() {
        let instance = Instance::new(vec![vec![0u32, 1, 2, 3]], Weights::uniform(1u64)).unwrap();
        let sol = Mc3Solver::new()
            .algorithm(Algorithm::General)
            .max_classifier_len(2)
            .solve(&instance)
            .unwrap();
        sol.verify(&instance).unwrap();
        assert!(sol.classifiers().iter().all(|c| c.len() <= 2));
        // pairs cost 1 each → best bounded cover = 2 pairs
        assert_eq!(sol.cost(), Weight::new(2));
    }

    #[test]
    fn auto_dispatches_by_query_length() {
        let short = Instance::new(vec![vec![0u32, 1]], Weights::uniform(1u64)).unwrap();
        let long = Instance::new(vec![vec![0u32, 1, 2]], Weights::uniform(1u64)).unwrap();
        // both must simply succeed and verify
        Mc3Solver::new()
            .solve(&short)
            .unwrap()
            .verify(&short)
            .unwrap();
        Mc3Solver::new()
            .solve(&long)
            .unwrap()
            .verify(&long)
            .unwrap();
    }

    #[test]
    fn report_counts_components() {
        // X < XY < X+Y keeps every pruning rule quiet, so both queries
        // survive preprocessing as separate components
        let w = WeightsBuilder::new()
            .classifier([0u32], 2u64)
            .classifier([1u32], 2u64)
            .classifier([5u32], 2u64)
            .classifier([6u32], 2u64)
            .classifier([0u32, 1], 3u64)
            .classifier([5u32, 6], 3u64)
            .build();
        let instance = Instance::new(vec![vec![0u32, 1], vec![5u32, 6]], w).unwrap();
        let report = Mc3Solver::new().solve_report(&instance).unwrap();
        assert_eq!(report.components, 2);
        assert_eq!(report.instance_stats.num_queries, 2);
    }

    #[test]
    fn prebuilt_inventory_reduces_marginal_cost() {
        // Example 1.1 with AC already built: only {AJ, W} remain → 4N
        let instance = example_1_1();
        let ac = mc3_core::PropSet::from_ids([2u32, 3]);
        let report = Mc3Solver::new()
            .prebuilt(vec![ac.clone()])
            .solve_report(&instance)
            .unwrap();
        assert_eq!(report.solution.cost(), Weight::new(4));
        assert_eq!(report.prebuilt_used, vec![ac]);
        // full cover still covers everything
        assert!(mc3_core::is_cover(&instance, &report.full_cover()));
        // marginal solution alone does not
        assert!(!mc3_core::is_cover(
            &instance,
            report.solution.classifiers()
        ));
    }

    #[test]
    fn irrelevant_prebuilt_classifiers_are_ignored() {
        let instance = example_1_1();
        let alien = mc3_core::PropSet::from_ids([42u32, 43]);
        let report = Mc3Solver::new()
            .prebuilt(vec![alien])
            .solve_report(&instance)
            .unwrap();
        assert!(report.prebuilt_used.is_empty());
        assert_eq!(report.solution.cost(), Weight::new(7));
        report.solution.verify(&instance).unwrap();
    }

    #[test]
    fn prebuilt_works_for_k2_pipeline_too() {
        let w = WeightsBuilder::new()
            .classifier([0u32], 4u64)
            .classifier([1u32], 4u64)
            .classifier([0u32, 1], 6u64)
            .build();
        let instance = Instance::new(vec![vec![0u32, 1]], w).unwrap();
        let x = mc3_core::PropSet::from_ids([0u32]);
        let report = Mc3Solver::new()
            .algorithm(Algorithm::K2Exact)
            .prebuilt(vec![x])
            .solve_report(&instance)
            .unwrap();
        // with X free, completing via Y (4) beats XY (6)
        assert_eq!(report.solution.cost(), Weight::new(4));
        assert!(mc3_core::is_cover(&instance, &report.full_cover()));
    }

    #[test]
    fn both_flow_algorithms_agree_through_the_facade() {
        use mc3_core::rng::prelude::*;
        let mut rng = StdRng::seed_from_u64(0xF10F);
        for round in 0..10 {
            let n = rng.gen_range(2..=20usize);
            let mut queries = Vec::new();
            for _ in 0..n {
                let len = rng.gen_range(1..=2usize);
                queries.push(
                    (0..len)
                        .map(|_| rng.gen_range(0..12u32))
                        .collect::<Vec<_>>(),
                );
            }
            let instance = Instance::new(queries, Weights::seeded(round, 1, 30)).unwrap();
            let dinic = Mc3Solver::new()
                .algorithm(Algorithm::K2Exact)
                .solve(&instance)
                .unwrap();
            let cfg = SolverConfig {
                algorithm: Algorithm::K2Exact,
                flow_algorithm: mc3_flow::FlowAlgorithm::PushRelabel,
                ..Default::default()
            };
            let pr = Mc3Solver::with_config(cfg).solve(&instance).unwrap();
            assert_eq!(dinic.cost(), pr.cost(), "round {round}");
        }
    }

    #[test]
    fn baselines_run_through_facade() {
        let instance =
            Instance::new(vec![vec![0u32, 1], vec![1u32, 2]], Weights::uniform(1u64)).unwrap();
        for alg in [
            Algorithm::PropertyOriented,
            Algorithm::QueryOriented,
            Algorithm::Mixed,
            Algorithm::LocalGreedy,
            Algorithm::Exact,
        ] {
            let sol = Mc3Solver::new().algorithm(alg).solve(&instance).unwrap();
            sol.verify(&instance).unwrap();
        }
    }
}
