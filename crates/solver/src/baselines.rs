//! The baseline algorithms of the paper's experimental study (§6.1):
//! Property-Oriented, Query-Oriented, Mixed (\[13\]) and Local-Greedy.

use crate::cover_dp::min_cover;
use crate::work::WorkState;
use mc3_core::{
    ClassifierUniverse, FxHashMap, Instance, Mc3Error, PropId, PropSet, Result, Solution, Weight,
    Weights,
};
use mc3_flow::{hopcroft_karp, koenig_vertex_cover, BipartiteGraph};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// **Property-Oriented**: select every singleton classifier appearing in any
/// query (and nothing else).
pub fn property_oriented(instance: &Instance) -> Result<Solution> {
    let mut props: Vec<PropId> = instance.queries().iter().flat_map(|q| q.iter()).collect();
    props.sort_unstable();
    props.dedup();
    let classifiers: Vec<PropSet> = props.into_iter().map(PropSet::singleton).collect();
    for c in &classifiers {
        if instance.weight(c).is_infinite() {
            return Err(Mc3Error::Uncoverable { query_index: 0 });
        }
    }
    Solution::new(instance, classifiers)
}

/// **Query-Oriented**: select one full-query classifier per (distinct)
/// query.
pub fn query_oriented(instance: &Instance) -> Result<Solution> {
    for (qi, q) in instance.queries().iter().enumerate() {
        if instance.weight(q).is_infinite() {
            return Err(Mc3Error::Uncoverable { query_index: qi });
        }
    }
    Solution::new(instance, instance.queries().to_vec())
}

/// **Mixed** — the algorithm of the predecessor paper \[13\]: uniform
/// classifier costs, `k ≤ 2`. Minimum-cardinality vertex cover on the
/// query graph via Hopcroft–Karp + König (optimal under uniform costs).
///
/// Errors unless the instance has uniform weights and `k ≤ 2`.
pub fn mixed(instance: &Instance) -> Result<Solution> {
    let Weights::Uniform(_) = instance.weights() else {
        return Err(Mc3Error::Internal(
            "the Mixed baseline [13] requires uniform classifier costs".to_owned(),
        ));
    };
    if instance.max_query_len() > 2 {
        return Err(Mc3Error::Internal(
            "the Mixed baseline [13] requires queries of length at most 2".to_owned(),
        ));
    }

    let mut classifiers: Vec<PropSet> = Vec::new();
    // singleton queries force their classifier; the properties they test
    // are then covered for free in pair queries too
    let mut forced: mc3_core::FxHashSet<u32> = mc3_core::FxHashSet::default();
    for q in instance.queries() {
        if q.len() == 1 {
            forced.insert(q.ids()[0].0);
            classifiers.push(q.clone());
        }
    }
    // bipartite graph over the residual: L = still-needed singletons of
    // pair queries, R = pair queries; minimum-cardinality VC = optimal
    // residual cover under uniform costs
    let mut left_slot: FxHashMap<u32, usize> = FxHashMap::default();
    let mut left_props: Vec<PropId> = Vec::new();
    let mut pairs: Vec<&PropSet> = Vec::new();
    let mut edges: Vec<(usize, usize)> = Vec::new();
    for q in instance.queries() {
        if q.len() != 2 {
            continue;
        }
        if q.iter().all(|p| forced.contains(&p.0)) {
            continue; // already covered by forced singletons
        }
        let r = pairs.len();
        pairs.push(q);
        for p in q.iter() {
            if forced.contains(&p.0) {
                continue;
            }
            let l = *left_slot.entry(p.0).or_insert_with(|| {
                left_props.push(p);
                left_props.len() - 1
            });
            edges.push((l, r));
        }
    }
    let mut g = BipartiteGraph::new(left_props.len(), pairs.len());
    for (l, r) in edges {
        g.add_edge(l, r);
    }
    let m = hopcroft_karp(&g);
    let (in_l, in_r) = koenig_vertex_cover(&g, &m);
    for (i, &inc) in in_l.iter().enumerate() {
        if inc {
            classifiers.push(PropSet::singleton(left_props[i]));
        }
    }
    for (j, &inc) in in_r.iter().enumerate() {
        if inc {
            classifiers.push(pairs[j].clone());
        }
    }
    Solution::new(instance, classifiers)
}

/// **Local-Greedy**: repeatedly find, over all uncovered queries, the query
/// whose cheapest residual cover (under current weights — previously
/// selected classifiers are free) is globally minimal, and select that
/// cover. Covers at least one query per iteration.
pub fn local_greedy(instance: &Instance) -> Result<Solution> {
    let universe = ClassifierUniverse::build(instance);
    let mut ws = WorkState::new(instance, universe);
    let nq = instance.num_queries();

    // current best-cover cost per query; heap of (Reverse(cost), query)
    let mut current: Vec<Weight> = Vec::with_capacity(nq);
    let mut heap: BinaryHeap<(Reverse<Weight>, usize)> = BinaryHeap::new();
    for q in 0..nq {
        match min_cover(&ws, q) {
            Some((cost, _)) => {
                current.push(cost);
                heap.push((Reverse(cost), q));
            }
            None => return Err(Mc3Error::Uncoverable { query_index: q }),
        }
    }

    while let Some((Reverse(cost), q)) = heap.pop() {
        if !ws.alive[q] {
            continue;
        }
        if cost != current[q] {
            continue; // stale entry; a fresher one exists
        }
        let Some((cost_now, ids)) = min_cover(&ws, q) else {
            return Err(Mc3Error::Uncoverable { query_index: q });
        };
        debug_assert_eq!(cost_now, cost);
        // select the cover; weights drop to zero → affected queries improve
        let mut affected: Vec<u32> = Vec::new();
        for id in ids {
            affected.extend(ws.occurrences(id).map(|(qq, _)| qq));
            ws.select(id);
        }
        debug_assert!(!ws.alive[q], "selected cover must fully cover the query");
        affected.sort_unstable();
        affected.dedup();
        for &aq in &affected {
            let aq = aq as usize;
            if !ws.alive[aq] {
                continue;
            }
            let Some((c, _)) = min_cover(&ws, aq) else {
                return Err(Mc3Error::Uncoverable { query_index: aq });
            };
            if c < current[aq] {
                current[aq] = c;
                heap.push((Reverse(c), aq));
            }
        }
    }

    debug_assert_eq!(ws.alive_queries(), 0);
    Ok(Solution::from_ids(
        &ws.universe,
        ws.selected_ids().iter().copied(),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mc3_core::{Weight, WeightsBuilder};

    fn uniform_instance(queries: Vec<Vec<u32>>, w: u64) -> Instance {
        Instance::new(queries, Weights::uniform(w)).unwrap()
    }

    #[test]
    fn property_oriented_selects_each_property_once() {
        let instance = uniform_instance(vec![vec![0, 1], vec![1, 2]], 2);
        let sol = property_oriented(&instance).unwrap();
        sol.verify(&instance).unwrap();
        assert_eq!(sol.len(), 3);
        assert_eq!(sol.cost(), Weight::new(6));
    }

    #[test]
    fn query_oriented_selects_each_query_once() {
        let instance = uniform_instance(vec![vec![0, 1], vec![1, 2], vec![0, 1]], 2);
        let sol = query_oriented(&instance).unwrap();
        sol.verify(&instance).unwrap();
        assert_eq!(sol.len(), 2); // duplicates collapse
        assert_eq!(sol.cost(), Weight::new(4));
    }

    #[test]
    fn mixed_is_optimal_on_uniform_k2() {
        // star: queries {x,a},{x,b},{x,c} — cover {X} + nothing? X covers
        // one property of each query; must still cover a, b, c. VC of the
        // star picks X plus... edges are (X,XA),(A,XA),(X,XB),... per-query
        // pairs: optimal uniform cover = the 3 pair classifiers (cost 3)
        // vs X+A+B+C (cost 4).
        let instance = uniform_instance(vec![vec![0, 1], vec![0, 2], vec![0, 3]], 1);
        let sol = mixed(&instance).unwrap();
        sol.verify(&instance).unwrap();
        let exact = crate::exact::solve_exact(&instance).unwrap();
        assert_eq!(sol.cost(), exact.cost());
    }

    #[test]
    fn mixed_matches_exact_on_random_uniform_instances() {
        use mc3_core::rng::prelude::*;
        let mut rng = StdRng::seed_from_u64(31);
        for _ in 0..30 {
            let n = rng.gen_range(1..=6usize);
            let mut queries = Vec::new();
            for _ in 0..n {
                let len = rng.gen_range(1..=2usize);
                let props: Vec<u32> = (0..len).map(|_| rng.gen_range(0..6u32)).collect();
                queries.push(props);
            }
            let instance = uniform_instance(queries.clone(), 1);
            let sol = mixed(&instance).unwrap();
            sol.verify(&instance).unwrap();
            let exact = crate::exact::solve_exact(&instance).unwrap();
            assert_eq!(sol.cost(), exact.cost(), "queries {queries:?}");
        }
    }

    #[test]
    fn mixed_rejects_varying_costs() {
        let w = WeightsBuilder::new().classifier([0u32], 1u64).build();
        let instance = Instance::new(vec![vec![0u32]], w).unwrap();
        assert!(mixed(&instance).is_err());
    }

    #[test]
    fn mixed_rejects_long_queries() {
        let instance = uniform_instance(vec![vec![0, 1, 2]], 1);
        assert!(mixed(&instance).is_err());
    }

    #[test]
    fn local_greedy_covers_and_shares() {
        let w = WeightsBuilder::new()
            .classifier([0u32], 1u64)
            .classifier([1u32], 1u64)
            .classifier([2u32], 1u64)
            .classifier([0u32, 1], 5u64)
            .classifier([1u32, 2], 5u64)
            .build();
        let instance = Instance::new(vec![vec![0u32, 1], vec![1u32, 2]], w).unwrap();
        let sol = local_greedy(&instance).unwrap();
        sol.verify(&instance).unwrap();
        assert_eq!(sol.cost(), Weight::new(3)); // X, Y, Z with Y shared
    }

    #[test]
    fn local_greedy_benefits_from_free_reuse() {
        // After covering {x,y} with XY... Local-Greedy picks the cheapest
        // query first and reuses zeroed weights.
        let w = WeightsBuilder::new()
            .classifier([0u32], 10u64)
            .classifier([1u32], 10u64)
            .classifier([2u32], 1u64)
            .classifier([0u32, 1], 2u64)
            .classifier([1u32, 2], 10u64)
            .classifier([0u32, 2], 10u64)
            .classifier([0u32, 1, 2], 10u64)
            .build();
        let instance = Instance::new(vec![vec![0u32, 1], vec![0u32, 1, 2]], w).unwrap();
        let sol = local_greedy(&instance).unwrap();
        sol.verify(&instance).unwrap();
        // XY (2) covers query 0; query 1 then needs only z → Z (1). Total 3.
        assert_eq!(sol.cost(), Weight::new(3));
    }

    #[test]
    fn local_greedy_handles_singletons_and_uncoverable() {
        let instance = uniform_instance(vec![vec![5]], 3);
        let sol = local_greedy(&instance).unwrap();
        assert_eq!(sol.cost(), Weight::new(3));

        let w = WeightsBuilder::new().classifier([0u32], 1u64).build();
        let bad = Instance::new(vec![vec![0u32, 1]], w).unwrap();
        assert!(local_greedy(&bad).is_err());
    }

    #[test]
    fn baselines_always_cover_random_instances() {
        use mc3_core::rng::prelude::*;
        let mut rng = StdRng::seed_from_u64(2718);
        for round in 0..25 {
            let n = rng.gen_range(1..=8usize);
            let mut queries = Vec::new();
            for _ in 0..n {
                let len = rng.gen_range(1..=4usize);
                let props: Vec<u32> = (0..len).map(|_| rng.gen_range(0..10u32)).collect();
                queries.push(props);
            }
            let instance = Instance::new(queries, Weights::seeded(round, 1, 30)).unwrap();
            for sol in [
                property_oriented(&instance).unwrap(),
                query_oriented(&instance).unwrap(),
                local_greedy(&instance).unwrap(),
            ] {
                sol.verify(&instance).unwrap();
            }
        }
    }
}
