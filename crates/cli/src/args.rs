//! Hand-rolled argument parsing (no external CLI dependency).

use mc3_solver::Algorithm;

// The generator vocabulary lives in `mc3-workload` (shared with the
// serving-plane request mix); re-exported here so downstream users of the
// CLI crate keep a stable path.
pub use mc3_workload::GeneratorKind;

/// A parsed CLI invocation.
#[derive(Debug, Clone)]
pub struct Cli {
    /// The subcommand.
    pub command: Command,
}

/// The `mc3` subcommands.
#[derive(Debug, Clone)]
pub enum Command {
    /// `mc3 generate --kind K --queries N [--seed S] --out FILE`
    Generate {
        /// Generator to use.
        kind: GeneratorKind,
        /// Number of queries.
        queries: usize,
        /// RNG seed.
        seed: u64,
        /// Output JSON path (`-` = stdout).
        out: String,
    },
    /// `mc3 stats FILE`
    Stats {
        /// Dataset JSON path.
        dataset: String,
    },
    /// `mc3 solve FILE [--algorithm A] [--no-preprocess] [--no-refine]
    /// [--parallel] [--max-classifier-len K] [--out FILE]`
    Solve {
        /// Dataset JSON path.
        dataset: String,
        /// Algorithm to run.
        algorithm: Algorithm,
        /// Disable Algorithm 1.
        no_preprocess: bool,
        /// Disable reverse-delete refinement.
        no_refine: bool,
        /// Solve components in parallel.
        parallel: bool,
        /// Bounded classifier length `k'`.
        max_classifier_len: Option<usize>,
        /// Worker count for the shared solve executor under `--parallel`
        /// (0 = one per available core).
        threads: usize,
        /// Optional solution output path (`-` = stdout).
        out: Option<String>,
        /// Telemetry trace: `None` = off, `Some(None)` = print the span
        /// tree, `Some(Some(path))` = write the `TelemetryReport` JSON.
        trace: Option<Option<String>>,
        /// Chrome trace-event JSON output path.
        chrome: Option<String>,
    },
    /// `mc3 profile [DATASET.json] [--kind K] [--queries N] [--seed S]
    /// [--algorithm A] [--parallel] [--json FILE] [--top N] [--mem]`
    Profile {
        /// Dataset JSON path; omitted = generate a workload.
        dataset: Option<String>,
        /// Generator when no dataset is given.
        kind: GeneratorKind,
        /// Queries to generate when no dataset is given.
        queries: usize,
        /// Generator seed.
        seed: u64,
        /// Algorithm to profile.
        algorithm: Algorithm,
        /// Solve components in parallel.
        parallel: bool,
        /// Also write the `TelemetryReport` JSON here (and re-parse it as
        /// a schema self-check).
        json: Option<String>,
        /// Chrome trace-event JSON output path.
        chrome: Option<String>,
        /// Prometheus text-exposition output path.
        prom: Option<String>,
        /// How many counters to list.
        top: usize,
        /// Render the memory (allocation) flame view instead of wall time.
        mem: bool,
    },
    /// `mc3 bench-gate --baseline FILE [--candidate FILE] [--update]
    /// [--wall-tol X] [--counter-tol X] [--kind K] [--queries N] [--seed S]
    /// [--algorithm A]`
    BenchGate {
        /// Baseline JSON path (spec + known-good report).
        baseline: String,
        /// Pre-recorded candidate `TelemetryReport` JSON; omitted = re-run
        /// the baseline's workload spec.
        candidate: Option<String>,
        /// Re-record the baseline instead of gating against it.
        update: bool,
        /// Override the wall-time regression tolerance.
        wall_tol: Option<f64>,
        /// Override the counter drift tolerance.
        counter_tol: Option<f64>,
        /// Workload generator override (only meaningful with `--update`).
        kind: Option<GeneratorKind>,
        /// Workload size override (only meaningful with `--update`).
        queries: Option<u64>,
        /// Workload seed override (only meaningful with `--update`).
        seed: Option<u64>,
        /// Algorithm override (only meaningful with `--update`).
        algorithm: Option<Algorithm>,
        /// Skip the exact per-span allocation-count checks.
        no_mem: bool,
        /// Thread a shared solve cache through the run. Off by default so
        /// gated counters and allocation profiles stay deterministic.
        cache: bool,
    },
    /// `mc3 verify DATASET SOLUTION`
    Verify {
        /// Dataset JSON path.
        dataset: String,
        /// Solution JSON path.
        solution: String,
    },
    /// `mc3 audit DATASET SOLUTION` — full certificate check + report.
    Audit {
        /// Dataset JSON path.
        dataset: String,
        /// Solution JSON path.
        solution: String,
    },
    /// `mc3 parse QUERIES.txt [--uniform-cost N | --cost-range LO..HI [--seed S]] --out FILE`
    Parse {
        /// Text file: one conjunctive query per line (`a AND b`).
        queries: String,
        /// Uniform classifier cost; mutually exclusive with `cost_range`.
        uniform_cost: Option<u64>,
        /// Seeded cost range `(lo, hi)`.
        cost_range: Option<(u64, u64)>,
        /// Seed for the cost range.
        seed: u64,
        /// Output dataset JSON path (`-` = stdout).
        out: String,
    },
    /// `mc3 compare DATASET` — run every applicable algorithm.
    Compare {
        /// Dataset JSON path.
        dataset: String,
    },
    /// `mc3 serve [--addr HOST:PORT] [--workers N] [--cache-mb MB]
    /// [--no-cache] [--solve-threads N]`
    Serve {
        /// Listen address.
        addr: String,
        /// Worker threads (0 = one per available core).
        workers: usize,
        /// Solve-cache budget in MiB (0 disables caching).
        cache_mb: usize,
        /// Disable the solve and request caches.
        no_cache: bool,
        /// Shared solve-executor size (0 = one per available core).
        solve_threads: usize,
    },
    /// `mc3 loadgen [--addr HOST:PORT] [--duration SECS] [--concurrency N]
    /// [--mix SPEC] [--slo p99=MS] [--batch N]`
    Loadgen {
        /// Server address to drive.
        addr: String,
        /// Run duration in seconds.
        duration_secs: u64,
        /// Concurrent client connections.
        concurrency: usize,
        /// Workload mix spec; `None` = the pinned bench-gate mix.
        mix: Option<String>,
        /// p99 latency SLO for `/solve`, in milliseconds.
        slo_p99_ms: Option<u64>,
        /// Items per request: `N > 1` drives `POST /solve-batch`.
        batch: usize,
    },
    /// `mc3 help`
    Help,
}

/// Usage text.
pub const USAGE: &str = "\
mc3 — Minimization of Classifier Construction Cost for Search Queries

USAGE:
  mc3 generate --kind <synthetic|synthetic-short|bestbuy|private|private-fashion|
                       duplicate-heavy>
               --queries <N> [--seed <S>] --out <FILE|->
  mc3 stats <DATASET.json>
  mc3 solve <DATASET.json> [--algorithm <auto|k2|general|short-first|exact|
                             property-oriented|query-oriented|mixed|local-greedy>]
            [--no-preprocess] [--no-refine] [--parallel] [--threads <N>]
            [--max-classifier-len <K>] [--out <FILE|->] [--trace[=<FILE>]]
            [--chrome <FILE>]
  mc3 profile [DATASET.json] [--kind <K>] [--queries <N>] [--seed <S>]
              [--algorithm <A>] [--parallel] [--json <FILE>] [--top <N>]
              [--chrome <FILE>] [--prom <FILE>] [--mem]
  mc3 bench-gate --baseline <FILE> [--candidate <FILE>] [--update]
                 [--wall-tol <X>] [--counter-tol <X>] [--no-mem] [--kind <K>]
                 [--queries <N>] [--seed <S>] [--algorithm <A>] [--cache]
  mc3 verify <DATASET.json> <SOLUTION.json>
  mc3 audit <DATASET.json> <SOLUTION.json>
  mc3 parse <QUERIES.txt> [--uniform-cost <N> | --cost-range <LO..HI> [--seed <S>]]
            --out <FILE|->
  mc3 compare <DATASET.json>
  mc3 serve [--addr <HOST:PORT>] [--workers <N>] [--cache-mb <MB>] [--no-cache]
            [--solve-threads <N>]
  mc3 loadgen [--addr <HOST:PORT>] [--duration <SECS>] [--concurrency <N>]
              [--mix <kind:queries:seed[:algo][xW],...>] [--slo p99=<MS>]
              [--batch <N>]
  mc3 help
";

pub(crate) fn parse_algorithm(s: &str) -> Result<Algorithm, String> {
    // The vocabulary lives on the enum itself so the server's `/solve`
    // request field and the CLI can never drift apart.
    Algorithm::parse_name(s)
}

/// The canonical CLI spelling of an algorithm (inverse of the parser).
pub(crate) fn algorithm_name(a: Algorithm) -> &'static str {
    a.name()
}

struct ArgStream {
    args: Vec<String>,
    pos: usize,
}

impl ArgStream {
    fn next(&mut self) -> Option<&str> {
        let a = self.args.get(self.pos).map(String::as_str);
        if a.is_some() {
            self.pos += 1;
        }
        a
    }

    fn value_of(&mut self, flag: &str) -> Result<String, String> {
        self.next()
            .map(str::to_owned)
            .ok_or_else(|| format!("flag {flag} requires a value"))
    }
}

impl Cli {
    /// Parses `args` (without the program name).
    pub fn parse<I, S>(args: I) -> Result<Cli, String>
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut s = ArgStream {
            args: args.into_iter().map(Into::into).collect(),
            pos: 0,
        };
        let Some(cmd) = s.next().map(str::to_owned) else {
            return Ok(Cli {
                command: Command::Help,
            });
        };
        let command = match cmd.as_str() {
            "help" | "--help" | "-h" => Command::Help,
            "generate" => {
                let mut kind = None;
                let mut queries = None;
                let mut seed = 0u64;
                let mut out = None;
                while let Some(flag) = s.next().map(str::to_owned) {
                    match flag.as_str() {
                        "--kind" => kind = Some(GeneratorKind::parse(&s.value_of("--kind")?)?),
                        "--queries" => {
                            queries = Some(
                                s.value_of("--queries")?
                                    .parse()
                                    .map_err(|e| format!("--queries: {e}"))?,
                            )
                        }
                        "--seed" => {
                            seed = s
                                .value_of("--seed")?
                                .parse()
                                .map_err(|e| format!("--seed: {e}"))?
                        }
                        "--out" => out = Some(s.value_of("--out")?),
                        other => return Err(format!("unknown flag '{other}' for generate")),
                    }
                }
                Command::Generate {
                    kind: kind.ok_or("generate requires --kind")?,
                    queries: queries.ok_or("generate requires --queries")?,
                    seed,
                    out: out.ok_or("generate requires --out")?,
                }
            }
            "stats" => Command::Stats {
                dataset: s.next().ok_or("stats requires a dataset path")?.to_owned(),
            },
            "solve" => {
                let dataset = s.next().ok_or("solve requires a dataset path")?.to_owned();
                let mut algorithm = Algorithm::Auto;
                let mut no_preprocess = false;
                let mut no_refine = false;
                let mut parallel = false;
                let mut max_classifier_len = None;
                let mut threads = 0usize;
                let mut out = None;
                let mut trace = None;
                let mut chrome = None;
                while let Some(flag) = s.next().map(str::to_owned) {
                    match flag.as_str() {
                        "--algorithm" => algorithm = parse_algorithm(&s.value_of("--algorithm")?)?,
                        "--no-preprocess" => no_preprocess = true,
                        "--no-refine" => no_refine = true,
                        "--parallel" => parallel = true,
                        "--threads" => {
                            threads = s
                                .value_of("--threads")?
                                .parse()
                                .map_err(|e| format!("--threads: {e}"))?
                        }
                        "--max-classifier-len" => {
                            max_classifier_len = Some(
                                s.value_of("--max-classifier-len")?
                                    .parse()
                                    .map_err(|e| format!("--max-classifier-len: {e}"))?,
                            )
                        }
                        "--out" => out = Some(s.value_of("--out")?),
                        "--trace" => trace = Some(None),
                        other if other.starts_with("--trace=") => {
                            trace = Some(Some(other["--trace=".len()..].to_owned()))
                        }
                        "--chrome" => chrome = Some(s.value_of("--chrome")?),
                        other => return Err(format!("unknown flag '{other}' for solve")),
                    }
                }
                Command::Solve {
                    dataset,
                    algorithm,
                    no_preprocess,
                    no_refine,
                    parallel,
                    max_classifier_len,
                    threads,
                    out,
                    trace,
                    chrome,
                }
            }
            "profile" => {
                let mut dataset = None;
                let mut kind = GeneratorKind::Synthetic;
                let mut queries = 200usize;
                let mut seed = 7u64;
                let mut algorithm = Algorithm::ShortFirst;
                let mut parallel = false;
                let mut json = None;
                let mut chrome = None;
                let mut prom = None;
                let mut top = 12usize;
                let mut mem = false;
                while let Some(arg) = s.next().map(str::to_owned) {
                    match arg.as_str() {
                        "--kind" => kind = GeneratorKind::parse(&s.value_of("--kind")?)?,
                        "--queries" => {
                            queries = s
                                .value_of("--queries")?
                                .parse()
                                .map_err(|e| format!("--queries: {e}"))?
                        }
                        "--seed" => {
                            seed = s
                                .value_of("--seed")?
                                .parse()
                                .map_err(|e| format!("--seed: {e}"))?
                        }
                        "--algorithm" => algorithm = parse_algorithm(&s.value_of("--algorithm")?)?,
                        "--parallel" => parallel = true,
                        "--json" => json = Some(s.value_of("--json")?),
                        "--chrome" => chrome = Some(s.value_of("--chrome")?),
                        "--prom" => prom = Some(s.value_of("--prom")?),
                        "--top" => {
                            top = s
                                .value_of("--top")?
                                .parse()
                                .map_err(|e| format!("--top: {e}"))?
                        }
                        "--mem" => mem = true,
                        other if !other.starts_with("--") && dataset.is_none() => {
                            dataset = Some(other.to_owned())
                        }
                        other => return Err(format!("unknown flag '{other}' for profile")),
                    }
                }
                Command::Profile {
                    dataset,
                    kind,
                    queries,
                    seed,
                    algorithm,
                    parallel,
                    json,
                    chrome,
                    prom,
                    top,
                    mem,
                }
            }
            "bench-gate" => {
                let mut baseline = None;
                let mut candidate = None;
                let mut update = false;
                let mut wall_tol = None;
                let mut counter_tol = None;
                let mut kind = None;
                let mut queries = None;
                let mut seed = None;
                let mut algorithm = None;
                let mut no_mem = false;
                let mut cache = false;
                while let Some(flag) = s.next().map(str::to_owned) {
                    match flag.as_str() {
                        "--baseline" => baseline = Some(s.value_of("--baseline")?),
                        "--candidate" => candidate = Some(s.value_of("--candidate")?),
                        "--update" => update = true,
                        "--no-mem" => no_mem = true,
                        "--cache" => cache = true,
                        "--wall-tol" => {
                            wall_tol = Some(
                                s.value_of("--wall-tol")?
                                    .parse()
                                    .map_err(|e| format!("--wall-tol: {e}"))?,
                            )
                        }
                        "--counter-tol" => {
                            counter_tol = Some(
                                s.value_of("--counter-tol")?
                                    .parse()
                                    .map_err(|e| format!("--counter-tol: {e}"))?,
                            )
                        }
                        "--kind" => kind = Some(GeneratorKind::parse(&s.value_of("--kind")?)?),
                        "--queries" => {
                            queries = Some(
                                s.value_of("--queries")?
                                    .parse()
                                    .map_err(|e| format!("--queries: {e}"))?,
                            )
                        }
                        "--seed" => {
                            seed = Some(
                                s.value_of("--seed")?
                                    .parse()
                                    .map_err(|e| format!("--seed: {e}"))?,
                            )
                        }
                        "--algorithm" => {
                            algorithm = Some(parse_algorithm(&s.value_of("--algorithm")?)?)
                        }
                        other => return Err(format!("unknown flag '{other}' for bench-gate")),
                    }
                }
                if candidate.is_some() && update {
                    return Err("--candidate and --update are mutually exclusive".into());
                }
                Command::BenchGate {
                    baseline: baseline.ok_or("bench-gate requires --baseline")?,
                    candidate,
                    update,
                    wall_tol,
                    counter_tol,
                    kind,
                    queries,
                    seed,
                    algorithm,
                    no_mem,
                    cache,
                }
            }
            "verify" => {
                let dataset = s.next().ok_or("verify requires a dataset path")?.to_owned();
                let solution = s
                    .next()
                    .ok_or("verify requires a solution path")?
                    .to_owned();
                Command::Verify { dataset, solution }
            }
            "audit" => {
                let dataset = s.next().ok_or("audit requires a dataset path")?.to_owned();
                let solution = s.next().ok_or("audit requires a solution path")?.to_owned();
                Command::Audit { dataset, solution }
            }
            "parse" => {
                let queries = s.next().ok_or("parse requires a queries path")?.to_owned();
                let mut uniform_cost = None;
                let mut cost_range = None;
                let mut seed = 0u64;
                let mut out = None;
                while let Some(flag) = s.next().map(str::to_owned) {
                    match flag.as_str() {
                        "--uniform-cost" => {
                            uniform_cost = Some(
                                s.value_of("--uniform-cost")?
                                    .parse()
                                    .map_err(|e| format!("--uniform-cost: {e}"))?,
                            )
                        }
                        "--cost-range" => {
                            let v = s.value_of("--cost-range")?;
                            let (lo, hi) = v
                                .split_once("..")
                                .ok_or_else(|| format!("--cost-range expects LO..HI, got '{v}'"))?;
                            cost_range = Some((
                                lo.parse().map_err(|e| format!("--cost-range lo: {e}"))?,
                                hi.parse().map_err(|e| format!("--cost-range hi: {e}"))?,
                            ));
                        }
                        "--seed" => {
                            seed = s
                                .value_of("--seed")?
                                .parse()
                                .map_err(|e| format!("--seed: {e}"))?
                        }
                        "--out" => out = Some(s.value_of("--out")?),
                        other => return Err(format!("unknown flag '{other}' for parse")),
                    }
                }
                if uniform_cost.is_some() && cost_range.is_some() {
                    return Err("--uniform-cost and --cost-range are mutually exclusive".into());
                }
                Command::Parse {
                    queries,
                    uniform_cost,
                    cost_range,
                    seed,
                    out: out.ok_or("parse requires --out")?,
                }
            }
            "compare" => Command::Compare {
                dataset: s
                    .next()
                    .ok_or("compare requires a dataset path")?
                    .to_owned(),
            },
            "serve" => {
                let mut addr = "127.0.0.1:7920".to_owned();
                let mut workers = 0usize;
                let mut cache_mb = 64usize;
                let mut no_cache = false;
                let mut solve_threads = 0usize;
                while let Some(flag) = s.next().map(str::to_owned) {
                    match flag.as_str() {
                        "--addr" => addr = s.value_of("--addr")?,
                        "--workers" => {
                            workers = s
                                .value_of("--workers")?
                                .parse()
                                .map_err(|e| format!("--workers: {e}"))?
                        }
                        "--cache-mb" => {
                            cache_mb = s
                                .value_of("--cache-mb")?
                                .parse()
                                .map_err(|e| format!("--cache-mb: {e}"))?
                        }
                        "--no-cache" => no_cache = true,
                        "--solve-threads" => {
                            solve_threads = s
                                .value_of("--solve-threads")?
                                .parse()
                                .map_err(|e| format!("--solve-threads: {e}"))?
                        }
                        other => return Err(format!("unknown flag '{other}' for serve")),
                    }
                }
                Command::Serve {
                    addr,
                    workers,
                    cache_mb,
                    no_cache,
                    solve_threads,
                }
            }
            "loadgen" => {
                let mut addr = "127.0.0.1:7920".to_owned();
                let mut duration_secs = 10u64;
                let mut concurrency = 4usize;
                let mut mix = None;
                let mut slo_p99_ms = None;
                let mut batch = 1usize;
                while let Some(flag) = s.next().map(str::to_owned) {
                    match flag.as_str() {
                        "--addr" => addr = s.value_of("--addr")?,
                        "--duration" => {
                            let v = s.value_of("--duration")?;
                            let v = v.strip_suffix('s').unwrap_or(&v);
                            duration_secs = v.parse().map_err(|e| format!("--duration: {e}"))?
                        }
                        "--concurrency" => {
                            concurrency = s
                                .value_of("--concurrency")?
                                .parse()
                                .map_err(|e| format!("--concurrency: {e}"))?
                        }
                        "--mix" => mix = Some(s.value_of("--mix")?),
                        "--batch" => {
                            batch = s
                                .value_of("--batch")?
                                .parse()
                                .map_err(|e| format!("--batch: {e}"))?
                        }
                        "--slo" => {
                            let v = s.value_of("--slo")?;
                            let ms = v
                                .strip_prefix("p99=")
                                .ok_or_else(|| format!("--slo expects p99=<MS>, got '{v}'"))?;
                            let ms = ms.strip_suffix("ms").unwrap_or(ms);
                            slo_p99_ms = Some(ms.parse().map_err(|e| format!("--slo p99: {e}"))?)
                        }
                        other => return Err(format!("unknown flag '{other}' for loadgen")),
                    }
                }
                if concurrency == 0 {
                    return Err("--concurrency must be >= 1".into());
                }
                Command::Loadgen {
                    addr,
                    duration_secs,
                    concurrency,
                    mix,
                    slo_p99_ms,
                    batch,
                }
            }
            other => return Err(format!("unknown command '{other}'\n{USAGE}")),
        };
        Ok(Cli { command })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_generate() {
        let cli = Cli::parse([
            "generate",
            "--kind",
            "bestbuy",
            "--queries",
            "500",
            "--seed",
            "9",
            "--out",
            "x.json",
        ])
        .unwrap();
        match cli.command {
            Command::Generate {
                kind,
                queries,
                seed,
                out,
            } => {
                assert_eq!(kind, GeneratorKind::BestBuy);
                assert_eq!(queries, 500);
                assert_eq!(seed, 9);
                assert_eq!(out, "x.json");
            }
            other => panic!("wrong command: {other:?}"),
        }
    }

    #[test]
    fn parses_solve_with_flags() {
        let cli = Cli::parse([
            "solve",
            "d.json",
            "--algorithm",
            "short-first",
            "--no-preprocess",
            "--parallel",
            "--threads",
            "3",
            "--max-classifier-len",
            "2",
        ])
        .unwrap();
        match cli.command {
            Command::Solve {
                dataset,
                algorithm,
                no_preprocess,
                parallel,
                threads,
                max_classifier_len,
                ..
            } => {
                assert_eq!(dataset, "d.json");
                assert_eq!(algorithm, Algorithm::ShortFirst);
                assert!(no_preprocess);
                assert!(parallel);
                assert_eq!(threads, 3);
                assert_eq!(max_classifier_len, Some(2));
            }
            other => panic!("wrong command: {other:?}"),
        }
        // --threads defaults to 0 (auto) and rejects non-numbers.
        let cli = Cli::parse(["solve", "d.json", "--parallel"]).unwrap();
        assert!(matches!(cli.command, Command::Solve { threads: 0, .. }));
        assert!(Cli::parse(["solve", "d.json", "--threads", "many"]).is_err());
    }

    #[test]
    fn parses_solve_trace_variants() {
        let cli = Cli::parse(["solve", "d.json"]).unwrap();
        assert!(matches!(cli.command, Command::Solve { trace: None, .. }));
        let cli = Cli::parse(["solve", "d.json", "--trace"]).unwrap();
        assert!(matches!(
            cli.command,
            Command::Solve {
                trace: Some(None),
                ..
            }
        ));
        let cli = Cli::parse(["solve", "d.json", "--trace=t.json"]).unwrap();
        match cli.command {
            Command::Solve { trace, .. } => assert_eq!(trace, Some(Some("t.json".to_owned()))),
            other => panic!("wrong command: {other:?}"),
        }
    }

    #[test]
    fn parses_profile_defaults_and_flags() {
        let cli = Cli::parse(["profile"]).unwrap();
        match cli.command {
            Command::Profile {
                dataset,
                kind,
                queries,
                seed,
                algorithm,
                parallel,
                json,
                chrome,
                prom,
                top,
                mem,
            } => {
                assert_eq!(dataset, None);
                assert_eq!(kind, GeneratorKind::Synthetic);
                assert_eq!(queries, 200);
                assert_eq!(seed, 7);
                assert_eq!(algorithm, Algorithm::ShortFirst);
                assert!(!parallel);
                assert_eq!(json, None);
                assert_eq!(chrome, None);
                assert_eq!(prom, None);
                assert_eq!(top, 12);
                assert!(!mem);
            }
            other => panic!("wrong command: {other:?}"),
        }
        let cli = Cli::parse([
            "profile",
            "d.json",
            "--algorithm",
            "general",
            "--parallel",
            "--json",
            "tel.json",
            "--top",
            "5",
            "--mem",
        ])
        .unwrap();
        match cli.command {
            Command::Profile {
                dataset,
                algorithm,
                parallel,
                json,
                top,
                mem,
                ..
            } => {
                assert_eq!(dataset.as_deref(), Some("d.json"));
                assert_eq!(algorithm, Algorithm::General);
                assert!(parallel);
                assert_eq!(json.as_deref(), Some("tel.json"));
                assert_eq!(top, 5);
                assert!(mem);
            }
            other => panic!("wrong command: {other:?}"),
        }
        assert!(Cli::parse(["profile", "--frob"]).is_err());
        assert!(Cli::parse(["profile", "a.json", "b.json"]).is_err());
    }

    #[test]
    fn missing_required_flags_error() {
        assert!(Cli::parse(["generate", "--queries", "5"]).is_err());
        assert!(Cli::parse(["stats"]).is_err());
        assert!(Cli::parse(["verify", "only-one"]).is_err());
        assert!(Cli::parse([
            "generate",
            "--kind",
            "weird",
            "--queries",
            "5",
            "--out",
            "x"
        ])
        .is_err());
    }

    #[test]
    fn unknown_command_and_help() {
        assert!(Cli::parse(["frobnicate"]).is_err());
        assert!(matches!(
            Cli::parse(["help"]).unwrap().command,
            Command::Help
        ));
        assert!(matches!(
            Cli::parse(Vec::<String>::new()).unwrap().command,
            Command::Help
        ));
    }

    #[test]
    fn parses_exporter_flags() {
        let cli = Cli::parse(["profile", "--chrome", "t.json", "--prom", "m.prom"]).unwrap();
        match cli.command {
            Command::Profile { chrome, prom, .. } => {
                assert_eq!(chrome.as_deref(), Some("t.json"));
                assert_eq!(prom.as_deref(), Some("m.prom"));
            }
            other => panic!("wrong command: {other:?}"),
        }
        let cli = Cli::parse(["solve", "d.json", "--chrome", "t.json"]).unwrap();
        match cli.command {
            Command::Solve { chrome, .. } => assert_eq!(chrome.as_deref(), Some("t.json")),
            other => panic!("wrong command: {other:?}"),
        }
    }

    #[test]
    fn parses_bench_gate() {
        let cli = Cli::parse([
            "bench-gate",
            "--baseline",
            "BENCH_baseline.json",
            "--wall-tol",
            "2.5",
            "--counter-tol",
            "0.1",
        ])
        .unwrap();
        match cli.command {
            Command::BenchGate {
                baseline,
                candidate,
                update,
                wall_tol,
                counter_tol,
                no_mem,
                cache,
                ..
            } => {
                assert_eq!(baseline, "BENCH_baseline.json");
                assert_eq!(candidate, None);
                assert!(!update);
                assert_eq!(wall_tol, Some(2.5));
                assert_eq!(counter_tol, Some(0.1));
                assert!(!no_mem);
                assert!(!cache, "caching must be opt-in for the bench gate");
            }
            other => panic!("wrong command: {other:?}"),
        }
        let cli = Cli::parse([
            "bench-gate",
            "--baseline",
            "b.json",
            "--update",
            "--kind",
            "bestbuy",
            "--queries",
            "300",
            "--seed",
            "11",
            "--algorithm",
            "auto",
            "--no-mem",
            "--cache",
        ])
        .unwrap();
        match cli.command {
            Command::BenchGate {
                update,
                kind,
                queries,
                seed,
                algorithm,
                no_mem,
                cache,
                ..
            } => {
                assert!(update);
                assert_eq!(kind, Some(GeneratorKind::BestBuy));
                assert_eq!(queries, Some(300));
                assert_eq!(seed, Some(11));
                assert_eq!(algorithm, Some(Algorithm::Auto));
                assert!(no_mem);
                assert!(cache);
            }
            other => panic!("wrong command: {other:?}"),
        }
        // --baseline is required; --candidate and --update conflict
        assert!(Cli::parse(["bench-gate"]).is_err());
        assert!(Cli::parse([
            "bench-gate",
            "--baseline",
            "b.json",
            "--candidate",
            "c.json",
            "--update",
        ])
        .is_err());
    }

    #[test]
    fn names_round_trip_through_parsers() {
        for kind in [
            GeneratorKind::Synthetic,
            GeneratorKind::SyntheticShort,
            GeneratorKind::BestBuy,
            GeneratorKind::Private,
            GeneratorKind::PrivateFashion,
            GeneratorKind::DuplicateHeavy,
        ] {
            assert_eq!(GeneratorKind::parse(kind.name()).unwrap(), kind);
        }
        for alg in [
            Algorithm::Auto,
            Algorithm::K2Exact,
            Algorithm::General,
            Algorithm::ShortFirst,
            Algorithm::Exact,
            Algorithm::PropertyOriented,
            Algorithm::QueryOriented,
            Algorithm::Mixed,
            Algorithm::LocalGreedy,
        ] {
            assert_eq!(parse_algorithm(algorithm_name(alg)).unwrap(), alg);
        }
    }

    #[test]
    fn parses_serve_and_loadgen() {
        let cli = Cli::parse(["serve"]).unwrap();
        match cli.command {
            Command::Serve {
                addr,
                workers,
                cache_mb,
                no_cache,
                solve_threads,
            } => {
                assert_eq!(addr, "127.0.0.1:7920");
                assert_eq!(workers, 0);
                assert_eq!(cache_mb, 64);
                assert!(!no_cache);
                assert_eq!(solve_threads, 0);
            }
            other => panic!("wrong command: {other:?}"),
        }
        let cli = Cli::parse([
            "serve",
            "--addr",
            "0.0.0.0:8080",
            "--workers",
            "6",
            "--cache-mb",
            "128",
            "--no-cache",
            "--solve-threads",
            "5",
        ])
        .unwrap();
        match cli.command {
            Command::Serve {
                addr,
                workers,
                cache_mb,
                no_cache,
                solve_threads,
            } => {
                assert_eq!(addr, "0.0.0.0:8080");
                assert_eq!(workers, 6);
                assert_eq!(cache_mb, 128);
                assert!(no_cache);
                assert_eq!(solve_threads, 5);
            }
            other => panic!("wrong command: {other:?}"),
        }
        let cli = Cli::parse([
            "loadgen",
            "--addr",
            "127.0.0.1:9999",
            "--duration",
            "5s",
            "--concurrency",
            "8",
            "--mix",
            "synthetic:100:7",
            "--slo",
            "p99=500ms",
            "--batch",
            "8",
        ])
        .unwrap();
        match cli.command {
            Command::Loadgen {
                addr,
                duration_secs,
                concurrency,
                mix,
                slo_p99_ms,
                batch,
            } => {
                assert_eq!(addr, "127.0.0.1:9999");
                assert_eq!(duration_secs, 5);
                assert_eq!(concurrency, 8);
                assert_eq!(mix.as_deref(), Some("synthetic:100:7"));
                assert_eq!(slo_p99_ms, Some(500));
                assert_eq!(batch, 8);
            }
            other => panic!("wrong command: {other:?}"),
        }
        // Defaults, bare-`p99=` without the ms suffix, plain seconds.
        let cli = Cli::parse(["loadgen", "--duration", "3", "--slo", "p99=250"]).unwrap();
        match cli.command {
            Command::Loadgen {
                duration_secs,
                concurrency,
                mix,
                slo_p99_ms,
                batch,
                ..
            } => {
                assert_eq!(duration_secs, 3);
                assert_eq!(concurrency, 4);
                assert_eq!(mix, None);
                assert_eq!(slo_p99_ms, Some(250));
                assert_eq!(batch, 1);
            }
            other => panic!("wrong command: {other:?}"),
        }
        assert!(Cli::parse(["loadgen", "--slo", "p50=10"]).is_err());
        assert!(Cli::parse(["loadgen", "--batch", "nope"]).is_err());
        assert!(Cli::parse(["loadgen", "--concurrency", "0"]).is_err());
        assert!(Cli::parse(["serve", "--frob"]).is_err());
    }

    #[test]
    fn algorithm_aliases() {
        assert_eq!(parse_algorithm("po").unwrap(), Algorithm::PropertyOriented);
        assert_eq!(parse_algorithm("lg").unwrap(), Algorithm::LocalGreedy);
        assert!(parse_algorithm("nope").is_err());
    }
}
