//! The `mc3` command-line entry point.

/// Installs the JSONL event sink when `MC3_LOG` is set: `MC3_LOG=debug`
/// writes events to stderr (stdout stays reserved for command output),
/// `MC3_LOG=debug:events.jsonl` appends them to the named file. The
/// level is one of `debug|info|warn|error`; see docs/observability.md.
fn init_event_log() {
    let Ok(spec) = std::env::var("MC3_LOG") else {
        return;
    };
    let (level, path) = match spec.split_once(':') {
        Some((l, p)) => (l, Some(p)),
        None => (spec.as_str(), None),
    };
    let Some(min_level) = mc3_obs::Level::parse(level) else {
        eprintln!("warning: MC3_LOG level '{level}' is not debug|info|warn|error; event log off");
        return;
    };
    let cfg = mc3_obs::EventLogConfig {
        min_level,
        ..Default::default()
    };
    match path {
        Some(p) => {
            if let Err(e) = mc3_obs::events::install_file(p, cfg) {
                eprintln!("warning: MC3_LOG: cannot open '{p}': {e}; event log off");
            }
        }
        None => mc3_obs::events::install_stderr(cfg),
    }
}

fn main() {
    init_event_log();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cli = match mc3_cli::Cli::parse(args) {
        Ok(cli) => cli,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    match mc3_cli::run(&cli) {
        Ok(report) => print!("{report}"),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}
