//! The `mc3` command-line entry point.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cli = match mc3_cli::Cli::parse(args) {
        Ok(cli) => cli,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    match mc3_cli::run(&cli) {
        Ok(report) => print!("{report}"),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}
