//! JSON (de)serialization of solutions.

use mc3_core::json::Json;
use mc3_core::{Instance, PropSet, Result, Solution};

/// The serializable solution format: selected classifiers as property-id
/// lists plus the recorded total cost.
#[derive(Debug, Clone)]
pub struct SolutionFile {
    /// Total construction cost.
    pub cost: u64,
    /// Selected classifiers (sorted property ids each).
    pub classifiers: Vec<Vec<u32>>,
}

impl SolutionFile {
    /// Renders the file as a JSON document.
    pub fn to_json(&self) -> Json {
        Json::object([
            ("cost", Json::Int(self.cost as i128)),
            (
                "classifiers",
                Json::array(
                    self.classifiers
                        .iter()
                        .map(|c| Json::array(c.iter().map(|&p| Json::Int(p as i128)))),
                ),
            ),
        ])
    }

    /// Parses the file from a JSON document.
    pub fn from_json(v: &Json) -> std::result::Result<SolutionFile, String> {
        let cost = v
            .get("cost")
            .and_then(Json::as_u64)
            .ok_or("solution: missing u64 field 'cost'")?;
        let raw = v
            .get("classifiers")
            .and_then(Json::as_array)
            .ok_or("solution: missing array field 'classifiers'")?;
        let mut classifiers = Vec::with_capacity(raw.len());
        for c in raw {
            let ids = c
                .as_array()
                .ok_or("solution: each classifier must be an id array")?
                .iter()
                .map(|p| p.as_u32().ok_or("solution: property ids must be u32"))
                .collect::<std::result::Result<Vec<u32>, _>>()?;
            classifiers.push(ids);
        }
        Ok(SolutionFile { cost, classifiers })
    }

    /// Parses the file from JSON text.
    pub fn from_json_str(text: &str) -> std::result::Result<SolutionFile, String> {
        let doc = mc3_core::json::parse(text).map_err(|e| e.to_string())?;
        SolutionFile::from_json(&doc)
    }

    /// Captures a solution.
    pub fn from_solution(solution: &Solution) -> SolutionFile {
        SolutionFile {
            cost: solution.cost().raw(),
            classifiers: solution
                .classifiers()
                .iter()
                .map(|c| c.iter().map(|p| p.0).collect())
                .collect(),
        }
    }

    /// Rebuilds the solution against `instance` (recomputing and checking
    /// the cost).
    pub fn into_solution(self, instance: &Instance) -> Result<Solution> {
        let classifiers: Vec<PropSet> = self
            .classifiers
            .into_iter()
            .map(PropSet::from_ids)
            .collect();
        let solution = Solution::new(instance, classifiers)?;
        if solution.cost().raw() != self.cost {
            return Err(mc3_core::Mc3Error::Internal(format!(
                "solution file claims cost {} but weights sum to {}",
                self.cost,
                solution.cost()
            )));
        }
        Ok(solution)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mc3_core::Weights;

    #[test]
    fn roundtrip() {
        let instance = Instance::new(vec![vec![0u32, 1]], Weights::uniform(3u64)).unwrap();
        let solution = Solution::new(&instance, vec![PropSet::from_ids([0u32, 1])]).unwrap();
        let file = SolutionFile::from_solution(&solution);
        let json = file.to_json().to_string();
        let back = SolutionFile::from_json_str(&json).unwrap();
        let rebuilt = back.into_solution(&instance).unwrap();
        assert_eq!(rebuilt, solution);
    }

    #[test]
    fn malformed_json_is_rejected() {
        assert!(SolutionFile::from_json_str("not json").is_err());
        assert!(SolutionFile::from_json_str(r#"{"cost": 1}"#).is_err());
        assert!(SolutionFile::from_json_str(r#"{"cost": -1, "classifiers": []}"#).is_err());
    }

    #[test]
    fn cost_mismatch_is_rejected() {
        let instance = Instance::new(vec![vec![0u32]], Weights::uniform(3u64)).unwrap();
        let file = SolutionFile {
            cost: 99,
            classifiers: vec![vec![0]],
        };
        assert!(file.into_solution(&instance).is_err());
    }
}
