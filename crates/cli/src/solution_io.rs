//! JSON (de)serialization of solutions.

use mc3_core::{Instance, PropSet, Result, Solution};
use serde::{Deserialize, Serialize};

/// The serializable solution format: selected classifiers as property-id
/// lists plus the recorded total cost.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SolutionFile {
    /// Total construction cost.
    pub cost: u64,
    /// Selected classifiers (sorted property ids each).
    pub classifiers: Vec<Vec<u32>>,
}

impl SolutionFile {
    /// Captures a solution.
    pub fn from_solution(solution: &Solution) -> SolutionFile {
        SolutionFile {
            cost: solution.cost().raw(),
            classifiers: solution
                .classifiers()
                .iter()
                .map(|c| c.iter().map(|p| p.0).collect())
                .collect(),
        }
    }

    /// Rebuilds the solution against `instance` (recomputing and checking
    /// the cost).
    pub fn into_solution(self, instance: &Instance) -> Result<Solution> {
        let classifiers: Vec<PropSet> = self
            .classifiers
            .into_iter()
            .map(PropSet::from_ids)
            .collect();
        let solution = Solution::new(instance, classifiers)?;
        if solution.cost().raw() != self.cost {
            return Err(mc3_core::Mc3Error::Internal(format!(
                "solution file claims cost {} but weights sum to {}",
                self.cost,
                solution.cost()
            )));
        }
        Ok(solution)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mc3_core::Weights;

    #[test]
    fn roundtrip() {
        let instance = Instance::new(vec![vec![0u32, 1]], Weights::uniform(3u64)).unwrap();
        let solution = Solution::new(&instance, vec![PropSet::from_ids([0u32, 1])]).unwrap();
        let file = SolutionFile::from_solution(&solution);
        let json = serde_json::to_string(&file).unwrap();
        let back: SolutionFile = serde_json::from_str(&json).unwrap();
        let rebuilt = back.into_solution(&instance).unwrap();
        assert_eq!(rebuilt, solution);
    }

    #[test]
    fn cost_mismatch_is_rejected() {
        let instance = Instance::new(vec![vec![0u32]], Weights::uniform(3u64)).unwrap();
        let file = SolutionFile {
            cost: 99,
            classifiers: vec![vec![0]],
        };
        assert!(file.into_solution(&instance).is_err());
    }
}
