#![warn(missing_docs)]

//! Library backing the `mc3` command-line tool.
//!
//! The CLI is a thin wrapper over these functions so that every command is
//! unit-testable without spawning processes:
//!
//! ```text
//! mc3 generate --kind synthetic --queries 10000 --seed 7 --out load.json
//! mc3 stats load.json
//! mc3 solve load.json --algorithm general --out solution.json
//! mc3 verify load.json solution.json
//! ```

pub mod args;
pub mod commands;
pub mod solution_io;

pub use args::{Cli, Command};
pub use commands::run;
