//! Command implementations; each returns its textual output so tests can
//! assert on it without process spawning.

use crate::args::{Cli, Command, GeneratorKind, USAGE};
use crate::solution_io::SolutionFile;
use mc3_core::InstanceStats;
use mc3_solver::Mc3Solver;
use mc3_workload::{generate_dataset, read_dataset_json, write_dataset_json, Dataset};
use std::fmt::Write as _;
use std::fs::File;
use std::io::Read;

/// Runs a parsed CLI invocation; returns the report to print.
pub fn run(cli: &Cli) -> Result<String, String> {
    match &cli.command {
        Command::Help => Ok(USAGE.to_owned()),
        Command::Generate {
            kind,
            queries,
            seed,
            out,
        } => generate(*kind, *queries, *seed, out),
        Command::Stats { dataset } => stats(dataset),
        Command::Solve {
            dataset,
            algorithm,
            no_preprocess,
            no_refine,
            parallel,
            max_classifier_len,
            threads,
            out,
            trace,
            chrome,
        } => solve(
            dataset,
            *algorithm,
            *no_preprocess,
            *no_refine,
            *parallel,
            *max_classifier_len,
            *threads,
            out.as_deref(),
            trace.as_ref(),
            chrome.as_deref(),
        ),
        Command::Profile {
            dataset,
            kind,
            queries,
            seed,
            algorithm,
            parallel,
            json,
            chrome,
            prom,
            top,
            mem,
        } => profile(
            dataset.as_deref(),
            *kind,
            *queries,
            *seed,
            *algorithm,
            *parallel,
            json.as_deref(),
            chrome.as_deref(),
            prom.as_deref(),
            *top,
            *mem,
        ),
        Command::BenchGate {
            baseline,
            candidate,
            update,
            wall_tol,
            counter_tol,
            kind,
            queries,
            seed,
            algorithm,
            no_mem,
            cache,
        } => bench_gate(
            baseline,
            candidate.as_deref(),
            *update,
            *wall_tol,
            *counter_tol,
            *kind,
            *queries,
            *seed,
            *algorithm,
            *no_mem,
            *cache,
        ),
        Command::Verify { dataset, solution } => verify(dataset, solution),
        Command::Audit { dataset, solution } => audit(dataset, solution),
        Command::Parse {
            queries,
            uniform_cost,
            cost_range,
            seed,
            out,
        } => parse_cmd(queries, *uniform_cost, *cost_range, *seed, out),
        Command::Compare { dataset } => compare(dataset),
        Command::Serve {
            addr,
            workers,
            cache_mb,
            no_cache,
            solve_threads,
        } => {
            let cfg = mc3_server::ServerConfig {
                addr: addr.clone(),
                workers: *workers,
                cache_mb: *cache_mb,
                no_cache: *no_cache,
                solve_threads: *solve_threads,
            };
            let server = mc3_server::Server::start(&cfg)?;
            // Announce before blocking: `join` only returns on a fatal
            // accept-loop error, and scripts need the resolved port.
            println!("mc3 serve: listening on http://{}", server.local_addr());
            server.join()
        }
        Command::Loadgen {
            addr,
            duration_secs,
            concurrency,
            mix,
            slo_p99_ms,
            batch,
        } => {
            let mix = match mix {
                Some(spec) => mc3_workload::RequestMix::parse(spec)?,
                None => mc3_workload::RequestMix::pinned(),
            };
            let cfg = mc3_server::LoadgenConfig {
                addr: addr.clone(),
                duration_secs: *duration_secs,
                concurrency: *concurrency,
                mix,
                slo_p99_ms: *slo_p99_ms,
                batch: *batch,
            };
            mc3_server::run_loadgen(&cfg)
        }
    }
}

fn load_dataset(path: &str) -> Result<Dataset, String> {
    let file = File::open(path).map_err(|e| format!("cannot open {path}: {e}"))?;
    read_dataset_json(file).map_err(|e| format!("cannot parse {path}: {e}"))
}

fn write_out(path: &str, content: &str) -> Result<String, String> {
    if path == "-" {
        Ok(content.to_owned())
    } else {
        std::fs::write(path, content).map_err(|e| format!("cannot write {path}: {e}"))?;
        Ok(format!("wrote {path}\n"))
    }
}

fn generate(kind: GeneratorKind, queries: usize, seed: u64, out: &str) -> Result<String, String> {
    let ds = generate_dataset(kind, queries, seed);
    let mut buf = Vec::new();
    write_dataset_json(&ds, &mut buf).map_err(|e| e.to_string())?;
    let json = String::from_utf8(buf).map_err(|e| e.to_string())?;
    let mut report = write_out(out, &json)?;
    if out != "-" {
        let _ = writeln!(
            report,
            "generated '{}': {} queries, {} properties, k = {}",
            ds.name,
            ds.instance.num_queries(),
            ds.instance.num_properties(),
            ds.instance.max_query_len()
        );
    }
    Ok(report)
}

fn stats(path: &str) -> Result<String, String> {
    let ds = load_dataset(path)?;
    let stats = InstanceStats::gather(&ds.instance);
    let mut out = String::new();
    let _ = writeln!(out, "dataset:            {}", ds.name);
    let _ = writeln!(out, "queries (n):        {}", stats.num_queries);
    let _ = writeln!(out, "properties |P|:     {}", stats.num_properties);
    let _ = writeln!(out, "max query len (k):  {}", stats.max_query_len);
    let _ = writeln!(out, "classifiers |C_Q|:  {}", stats.num_classifiers);
    let _ = writeln!(out, "incidence (I):      {}", stats.max_incidence);
    let _ = writeln!(out, "sum of lengths n̂:   {}", stats.sum_query_lens);
    let _ = writeln!(
        out,
        "short queries (≤2): {:.1}%",
        100.0 * stats.short_query_fraction()
    );
    let _ = writeln!(
        out,
        "Theorem 5.3 guarantee for MC3[G]: {:.2}×",
        stats.approximation_guarantee()
    );
    let _ = writeln!(out, "length histogram:   {:?}", stats.length_histogram);
    Ok(out)
}

/// Serializes a telemetry report to pretty JSON and re-parses it through
/// `mc3_core::json` + the strict [`TelemetryReport::from_json`] reader, so
/// every emitted trace is guaranteed to round-trip (schema drift fails the
/// command, not a later consumer).
fn telemetry_json_checked(tel: &mc3_telemetry::TelemetryReport) -> Result<String, String> {
    let json = tel.to_json().to_string_pretty();
    let parsed = mc3_core::json::parse(&json)
        .map_err(|e| format!("telemetry JSON does not parse back: {e}"))?;
    let back = mc3_telemetry::TelemetryReport::from_json(&parsed)
        .map_err(|e| format!("telemetry JSON failed the schema check: {e}"))?;
    if &back != tel {
        return Err("telemetry JSON round-trip changed the report".to_owned());
    }
    Ok(json)
}

#[allow(clippy::too_many_arguments)]
fn solve(
    dataset: &str,
    algorithm: mc3_solver::Algorithm,
    no_preprocess: bool,
    no_refine: bool,
    parallel: bool,
    max_classifier_len: Option<usize>,
    threads: usize,
    out: Option<&str>,
    trace: Option<&Option<String>>,
    chrome: Option<&str>,
) -> Result<String, String> {
    let ds = load_dataset(dataset)?;
    let mut solver = Mc3Solver::new()
        .algorithm(algorithm)
        .parallel(parallel)
        .threads(threads);
    if no_preprocess {
        solver = solver.without_preprocessing();
    }
    if no_refine {
        solver = solver.without_refinement();
    }
    if let Some(kp) = max_classifier_len {
        solver = solver.max_classifier_len(kp);
    }
    let session = (trace.is_some() || chrome.is_some()).then(mc3_telemetry::Session::begin);
    let report = solver
        .solve_report(&ds.instance)
        .map_err(|e| format!("solve failed: {e}"))?;
    let tel = session.map(mc3_telemetry::Session::finish);
    report
        .solution
        .verify(&ds.instance)
        .map_err(|e| format!("internal error — solution failed verification: {e}"))?;

    let mut text = String::new();
    let _ = writeln!(
        text,
        "algorithm {:?}: cost {} with {} classifiers ({} components, {:.3}s total)",
        algorithm,
        report.solution.cost(),
        report.solution.len(),
        report.components,
        report.timings.total.as_secs_f64()
    );
    let _ = writeln!(
        text,
        "preprocessing: {} selected, {} removed, {} queries closed",
        report.preprocess_stats.selected,
        report.preprocess_stats.removed_by_decomposition
            + report.preprocess_stats.removed_by_singleton_pruning,
        report.preprocess_stats.covered_queries
    );
    if let Some(path) = out {
        let json = SolutionFile::from_solution(&report.solution)
            .to_json()
            .to_string_pretty();
        text.push_str(&write_out(path, &json)?);
    }
    if let Some(tel) = tel {
        match trace {
            Some(Some(path)) => {
                let json = telemetry_json_checked(&tel)?;
                text.push_str(&write_out(path, &json)?);
            }
            Some(None) => {
                text.push('\n');
                text.push_str(&tel.render());
            }
            None => {}
        }
        if let Some(path) = chrome {
            let json = mc3_obs::chrome_trace_json(&tel).to_string_pretty();
            text.push_str(&write_out(path, &json)?);
        }
    }
    Ok(text)
}

/// `mc3 profile`: solve a dataset (or a generated workload) under a
/// telemetry session and print the span tree plus the busiest counters —
/// or, with `--mem`, the allocation flame view.
#[allow(clippy::too_many_arguments)]
fn profile(
    dataset: Option<&str>,
    kind: GeneratorKind,
    queries: usize,
    seed: u64,
    algorithm: mc3_solver::Algorithm,
    parallel: bool,
    json: Option<&str>,
    chrome: Option<&str>,
    prom: Option<&str>,
    top: usize,
    mem: bool,
) -> Result<String, String> {
    let ds = match dataset {
        Some(path) => load_dataset(path)?,
        None => generate_dataset(kind, queries, seed),
    };
    let session = mc3_telemetry::Session::begin();
    let report = Mc3Solver::new()
        .algorithm(algorithm)
        .parallel(parallel)
        .solve_report(&ds.instance)
        .map_err(|e| format!("solve failed: {e}"))?;
    let tel = session.finish();

    let mut text = String::new();
    let _ = writeln!(
        text,
        "profile of '{}' ({} queries, k = {}) with {:?}:",
        ds.name,
        ds.instance.num_queries(),
        ds.instance.max_query_len(),
        algorithm
    );
    let _ = writeln!(
        text,
        "cost {} with {} classifiers in {:.3}s\n",
        report.solution.cost(),
        report.solution.len(),
        report.timings.total.as_secs_f64()
    );
    if mem {
        text.push_str(&tel.render_mem());
    } else {
        text.push_str(&tel.render_top(top));
        match tel.peak_rss_bytes {
            Some(rss) => {
                let _ = writeln!(text, "peak rss (process): {rss} bytes");
            }
            None => {
                let _ = writeln!(text, "peak rss (process): not measured on this platform");
            }
        }
    }
    if let Some(path) = json {
        let json = telemetry_json_checked(&tel)?;
        text.push_str(&write_out(path, &json)?);
    }
    if let Some(path) = chrome {
        let json = mc3_obs::chrome_trace_json(&tel).to_string_pretty();
        text.push_str(&write_out(path, &json)?);
    }
    if let Some(path) = prom {
        text.push_str(&write_out(path, &mc3_obs::prometheus_text(&tel))?);
    }
    Ok(text)
}

/// Runs the deterministic workload a baseline pins and returns the
/// telemetry report the solve produced. The solve cache is off unless
/// `--cache` asks for it: memoization skips whole component solves, so a
/// warm cache would make gated counters depend on request history.
fn run_workload_spec(
    spec: &mc3_obs::WorkloadSpec,
    cache: bool,
) -> Result<mc3_telemetry::TelemetryReport, String> {
    let kind = GeneratorKind::parse(&spec.kind)?;
    let algorithm = crate::args::parse_algorithm(&spec.algorithm)?;
    let ds = generate_dataset(kind, spec.queries as usize, spec.seed);
    let session = mc3_telemetry::Session::begin();
    let mut solver = Mc3Solver::new().algorithm(algorithm);
    if cache {
        solver = solver.cache(std::sync::Arc::new(
            mc3_solver::SolveCache::with_capacity_mb(64),
        ));
    }
    solver
        .solve_report(&ds.instance)
        .map_err(|e| format!("solve failed: {e}"))?;
    Ok(session.finish())
}

/// `mc3 bench-gate`: compare a candidate `TelemetryReport` against a
/// checked-in baseline (or re-record the baseline with `--update`).
#[allow(clippy::too_many_arguments)]
fn bench_gate(
    baseline_path: &str,
    candidate: Option<&str>,
    update: bool,
    wall_tol: Option<f64>,
    counter_tol: Option<f64>,
    kind: Option<GeneratorKind>,
    queries: Option<u64>,
    seed: Option<u64>,
    algorithm: Option<mc3_solver::Algorithm>,
    no_mem: bool,
    cache: bool,
) -> Result<String, String> {
    let baseline_text = match std::fs::read_to_string(baseline_path) {
        Ok(text) => Some(text),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => None,
        Err(e) => return Err(format!("cannot read {baseline_path}: {e}")),
    };
    let baseline_json = baseline_text
        .as_deref()
        .map(|text| {
            mc3_core::json::parse(text).map_err(|e| format!("cannot parse {baseline_path}: {e}"))
        })
        .transpose()?;

    if update {
        // Only the workload pin is needed from the old file — its report may
        // legitimately fail the strict schema check (counters registered
        // since it was recorded are exactly what --update refreshes).
        let prev_spec = baseline_json
            .as_ref()
            .map(|json| {
                mc3_obs::BaselineFile::spec_from_json(json)
                    .map_err(|e| format!("invalid baseline {baseline_path}: {e}"))
            })
            .transpose()?;
        // flag > existing baseline > default, per field
        let prev = prev_spec.as_ref();
        let spec = mc3_obs::WorkloadSpec {
            kind: kind
                .map(|k| k.name().to_owned())
                .or_else(|| prev.map(|s| s.kind.clone()))
                .unwrap_or_else(|| GeneratorKind::Synthetic.name().to_owned()),
            queries: queries.or(prev.map(|s| s.queries)).unwrap_or(400),
            seed: seed.or(prev.map(|s| s.seed)).unwrap_or(7),
            algorithm: algorithm
                .map(|a| crate::args::algorithm_name(a).to_owned())
                .or_else(|| prev.map(|s| s.algorithm.clone()))
                .unwrap_or_else(|| {
                    crate::args::algorithm_name(mc3_solver::Algorithm::ShortFirst).to_owned()
                }),
        };
        let report = run_workload_spec(&spec, cache)?;
        let file = mc3_obs::BaselineFile { spec, report };
        std::fs::write(baseline_path, file.to_json().to_string_pretty())
            .map_err(|e| format!("cannot write {baseline_path}: {e}"))?;
        return Ok(format!(
            "recorded baseline '{}' ({} queries, seed {}, algorithm {}) to {baseline_path}\n",
            file.spec.kind, file.spec.queries, file.spec.seed, file.spec.algorithm
        ));
    }

    let baseline = match &baseline_json {
        Some(json) => mc3_obs::BaselineFile::from_json(json)
            .map_err(|e| format!("invalid baseline {baseline_path}: {e}"))?,
        None => {
            return Err(format!(
                "baseline {baseline_path} does not exist (record one with --update)"
            ))
        }
    };
    let cand_report = match candidate {
        Some(path) => {
            let text = std::fs::read_to_string(path)
                .map_err(|e| format!("cannot read candidate {path}: {e}"))?;
            let json = mc3_core::json::parse(&text)
                .map_err(|e| format!("cannot parse candidate {path}: {e}"))?;
            mc3_telemetry::TelemetryReport::from_json(&json)
                .map_err(|e| format!("invalid candidate report {path}: {e}"))?
        }
        None => run_workload_spec(&baseline.spec, cache)?,
    };
    let mut cfg = mc3_obs::GateConfig::default();
    if let Some(t) = wall_tol {
        cfg.wall_tol = t;
    }
    if let Some(t) = counter_tol {
        cfg.counter_tol = t;
    }
    cfg.check_mem = !no_mem;
    let outcome = mc3_obs::compare(&baseline.report, &cand_report, &cfg);
    let text = outcome.render();
    if outcome.passed() {
        Ok(format!("{text}bench-gate: PASS\n"))
    } else {
        Err(format!("{text}bench-gate: FAIL"))
    }
}

fn verify(dataset: &str, solution: &str) -> Result<String, String> {
    let ds = load_dataset(dataset)?;
    let mut json = String::new();
    File::open(solution)
        .map_err(|e| format!("cannot open {solution}: {e}"))?
        .read_to_string(&mut json)
        .map_err(|e| e.to_string())?;
    let file =
        SolutionFile::from_json_str(&json).map_err(|e| format!("cannot parse {solution}: {e}"))?;
    let sol = file
        .into_solution(&ds.instance)
        .map_err(|e| format!("invalid solution: {e}"))?;
    sol.verify(&ds.instance)
        .map_err(|e| format!("solution does NOT cover the query load: {e}"))?;
    Ok(format!(
        "OK: {} classifiers cover all {} queries at cost {}\n",
        sol.len(),
        ds.instance.num_queries(),
        sol.cost()
    ))
}

/// `mc3 audit`: verify a solution file against an instance end to end and
/// print its cover certificate (per-query witnesses, cost, bound status).
fn audit(dataset: &str, solution: &str) -> Result<String, String> {
    let ds = load_dataset(dataset)?;
    let mut json = String::new();
    File::open(solution)
        .map_err(|e| format!("cannot open {solution}: {e}"))?
        .read_to_string(&mut json)
        .map_err(|e| e.to_string())?;
    let file =
        SolutionFile::from_json_str(&json).map_err(|e| format!("cannot parse {solution}: {e}"))?;
    let sol = file
        .into_solution(&ds.instance)
        .map_err(|e| format!("invalid solution: {e}"))?;
    let cert = mc3_core::Certificate::for_solution(&ds.instance, &sol)
        .map_err(|e| format!("certificate construction failed: {e}"))?;
    cert.verify(&ds.instance, &sol)
        .map_err(|e| format!("certificate verification failed: {e}"))?;
    let mut out = String::new();
    let _ = writeln!(out, "certificate for '{}' on '{}':", solution, ds.name);
    out.push_str(&cert.render());
    let _ = writeln!(out, "verdict: VALID");
    Ok(out)
}

fn parse_cmd(
    queries_path: &str,
    uniform_cost: Option<u64>,
    cost_range: Option<(u64, u64)>,
    seed: u64,
    out: &str,
) -> Result<String, String> {
    let text = std::fs::read_to_string(queries_path)
        .map_err(|e| format!("cannot read {queries_path}: {e}"))?;
    let (queries, interner) =
        mc3_core::parse_queries(&text).map_err(|e| format!("cannot parse queries: {e}"))?;
    let weights = match (uniform_cost, cost_range) {
        (Some(c), None) => mc3_core::Weights::uniform(c),
        (None, Some((lo, hi))) => mc3_core::Weights::seeded(seed, lo, hi),
        (None, None) => mc3_core::Weights::uniform(1u64),
        (Some(_), Some(_)) => unreachable!("rejected during arg parsing"),
    };
    let instance = mc3_core::Instance::from_propsets(queries, weights)
        .map_err(|e| format!("invalid query load: {e}"))?;
    let name = std::path::Path::new(queries_path)
        .file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_else(|| "parsed".to_owned());
    let ds = Dataset::new(name, instance);
    let mut buf = Vec::new();
    write_dataset_json(&ds, &mut buf).map_err(|e| e.to_string())?;
    let json = String::from_utf8(buf).map_err(|e| e.to_string())?;
    let mut report = write_out(out, &json)?;
    if out != "-" {
        let _ = writeln!(
            report,
            "parsed {} queries over {} properties",
            ds.instance.num_queries(),
            interner.len()
        );
    }
    Ok(report)
}

fn compare(path: &str) -> Result<String, String> {
    use mc3_solver::Algorithm;
    let ds = load_dataset(path)?;
    let short = ds.instance.is_short();
    let uniform = matches!(ds.instance.weights(), mc3_core::Weights::Uniform(_));
    let mut algorithms: Vec<(&str, Algorithm)> = vec![("MC3 (auto)", Algorithm::Auto)];
    if !short {
        algorithms.push(("Short-First", Algorithm::ShortFirst));
    }
    algorithms.push(("Local-Greedy", Algorithm::LocalGreedy));
    algorithms.push(("Query-Oriented", Algorithm::QueryOriented));
    algorithms.push(("Property-Oriented", Algorithm::PropertyOriented));
    if short && uniform {
        algorithms.push(("Mixed [13]", Algorithm::Mixed));
    }

    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<18} {:>12} {:>12} {:>9}",
        "algorithm", "cost", "classifiers", "time"
    );
    for (label, alg) in algorithms {
        let report = Mc3Solver::new()
            .algorithm(alg)
            .solve_report(&ds.instance)
            .map_err(|e| format!("{label} failed: {e}"))?;
        let _ = writeln!(
            out,
            "{:<18} {:>12} {:>12} {:>8.3}s",
            label,
            report.solution.cost().to_string(),
            report.solution.len(),
            report.timings.total.as_secs_f64()
        );
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::Cli;

    fn tmp(name: &str) -> String {
        let dir = std::env::temp_dir().join("mc3_cli_tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name).to_string_lossy().into_owned()
    }

    #[test]
    fn generate_stats_solve_verify_pipeline() {
        let data = tmp("pipeline.json");
        let solution = tmp("pipeline_solution.json");

        let cli = Cli::parse([
            "generate",
            "--kind",
            "bestbuy",
            "--queries",
            "120",
            "--seed",
            "3",
            "--out",
            &data,
        ])
        .unwrap();
        let out = run(&cli).unwrap();
        assert!(out.contains("120 queries"), "{out}");

        let out = run(&Cli::parse(["stats", &data]).unwrap()).unwrap();
        assert!(out.contains("queries (n):        120"), "{out}");

        let out =
            run(&Cli::parse(["solve", &data, "--algorithm", "auto", "--out", &solution]).unwrap())
                .unwrap();
        assert!(out.contains("cost"), "{out}");

        let out = run(&Cli::parse(["verify", &data, &solution]).unwrap()).unwrap();
        assert!(out.starts_with("OK:"), "{out}");

        std::fs::remove_file(&data).ok();
        std::fs::remove_file(&solution).ok();
    }

    #[test]
    fn solve_to_stdout() {
        let data = tmp("stdout.json");
        run(&Cli::parse([
            "generate",
            "--kind",
            "synthetic-short",
            "--queries",
            "50",
            "--out",
            &data,
        ])
        .unwrap())
        .unwrap();
        let out = run(&Cli::parse(["solve", &data, "--out", "-"]).unwrap()).unwrap();
        assert!(out.contains("\"classifiers\""), "{out}");
        std::fs::remove_file(&data).ok();
    }

    #[test]
    fn missing_file_errors_cleanly() {
        let err = run(&Cli::parse(["stats", "/nonexistent/x.json"]).unwrap()).unwrap_err();
        assert!(err.contains("cannot open"));
    }

    #[test]
    fn verify_rejects_tampered_solution() {
        let data = tmp("tamper.json");
        let solution = tmp("tamper_solution.json");
        run(&Cli::parse([
            "generate",
            "--kind",
            "bestbuy",
            "--queries",
            "40",
            "--out",
            &data,
        ])
        .unwrap())
        .unwrap();
        run(&Cli::parse(["solve", &data, "--out", &solution]).unwrap()).unwrap();
        // tamper: drop one classifier
        let mut file =
            SolutionFile::from_json_str(&std::fs::read_to_string(&solution).unwrap()).unwrap();
        let dropped = file.classifiers.pop().unwrap();
        file.cost -= 1; // uniform cost 1 per classifier in BB
        std::fs::write(&solution, file.to_json().to_string()).unwrap();
        let err = run(&Cli::parse(["verify", &data, &solution]).unwrap()).unwrap_err();
        assert!(
            err.contains("does NOT cover") || err.contains("invalid solution"),
            "unexpected: {err} (dropped {dropped:?})"
        );
        std::fs::remove_file(&data).ok();
        std::fs::remove_file(&solution).ok();
    }

    #[test]
    fn parse_then_compare_pipeline() {
        let queries = tmp("load.txt");
        let data = tmp("load.json");
        std::fs::write(
            &queries,
            "team=Juventus AND color=White AND brand=Adidas\nteam=Chelsea AND brand=Adidas\nbrand=Adidas",
        )
        .unwrap();
        let out = run(&Cli::parse([
            "parse",
            &queries,
            "--cost-range",
            "1..9",
            "--seed",
            "4",
            "--out",
            &data,
        ])
        .unwrap())
        .unwrap();
        assert!(out.contains("parsed 3 queries over 4 properties"), "{out}");
        let out = run(&Cli::parse(["compare", &data]).unwrap()).unwrap();
        assert!(out.contains("MC3 (auto)"), "{out}");
        assert!(out.contains("Property-Oriented"), "{out}");
        std::fs::remove_file(&queries).ok();
        std::fs::remove_file(&data).ok();
    }

    #[test]
    fn parse_rejects_conflicting_cost_flags() {
        assert!(Cli::parse([
            "parse",
            "x.txt",
            "--uniform-cost",
            "1",
            "--cost-range",
            "1..5",
            "--out",
            "-",
        ])
        .is_err());
    }

    #[test]
    fn help_prints_usage() {
        let out = run(&Cli::parse(["help"]).unwrap()).unwrap();
        assert!(out.contains("USAGE"));
    }

    #[test]
    fn solve_trace_writes_a_parseable_report() {
        let data = tmp("trace.json");
        let trace = tmp("trace_out.json");
        run(&Cli::parse([
            "generate",
            "--kind",
            "synthetic",
            "--queries",
            "60",
            "--seed",
            "5",
            "--out",
            &data,
        ])
        .unwrap())
        .unwrap();
        let arg = format!("--trace={trace}");
        let out = run(&Cli::parse(["solve", &data, &arg]).unwrap()).unwrap();
        assert!(out.contains("wrote"), "{out}");
        let text = std::fs::read_to_string(&trace).unwrap();
        let json = mc3_core::json::parse(&text).unwrap();
        let tel = mc3_telemetry::TelemetryReport::from_json(&json).unwrap();
        assert!(
            tel.spans.iter().any(|s| s.name == "solve"),
            "{}",
            tel.render()
        );
        // bare --trace prints the tree instead of writing a file
        let out = run(&Cli::parse(["solve", &data, "--trace"]).unwrap()).unwrap();
        assert!(out.contains("solve"), "{out}");
        std::fs::remove_file(&data).ok();
        std::fs::remove_file(&trace).ok();
    }

    #[test]
    fn profile_exports_chrome_and_prometheus() {
        let chrome = tmp("profile_chrome.json");
        let prom = tmp("profile_metrics.prom");
        let out = run(&Cli::parse([
            "profile",
            "--queries",
            "60",
            "--seed",
            "2",
            "--chrome",
            &chrome,
            "--prom",
            &prom,
        ])
        .unwrap())
        .unwrap();
        assert!(out.contains("profile of"), "{out}");
        let text = std::fs::read_to_string(&chrome).unwrap();
        let json = mc3_core::json::parse(&text).unwrap();
        let events = json.get("traceEvents").and_then(|v| v.as_array()).unwrap();
        assert!(
            events
                .iter()
                .any(|e| e.get("ph").and_then(|p| p.as_str()) == Some("X")),
            "{text}"
        );
        let metrics = std::fs::read_to_string(&prom).unwrap();
        assert!(
            metrics.contains("# TYPE mc3_greedy_iterations_total counter"),
            "{metrics}"
        );
        std::fs::remove_file(&chrome).ok();
        std::fs::remove_file(&prom).ok();
    }

    #[test]
    fn solve_chrome_writes_trace_events() {
        let data = tmp("solve_chrome_data.json");
        let chrome = tmp("solve_chrome.json");
        run(&Cli::parse([
            "generate",
            "--kind",
            "synthetic",
            "--queries",
            "50",
            "--seed",
            "5",
            "--out",
            &data,
        ])
        .unwrap())
        .unwrap();
        let out = run(&Cli::parse(["solve", &data, "--chrome", &chrome]).unwrap()).unwrap();
        assert!(out.contains("wrote"), "{out}");
        let text = std::fs::read_to_string(&chrome).unwrap();
        assert!(mc3_core::json::parse(&text).is_ok(), "{text}");
        std::fs::remove_file(&data).ok();
        std::fs::remove_file(&chrome).ok();
    }

    #[test]
    fn bench_gate_update_then_pass_then_inflated_fail() {
        let baseline = tmp("bench_gate_baseline.json");
        std::fs::remove_file(&baseline).ok();

        // gating against a missing baseline is an error
        let err = run(&Cli::parse(["bench-gate", "--baseline", &baseline]).unwrap()).unwrap_err();
        assert!(err.contains("--update"), "{err}");

        // record a small deterministic baseline
        let out = run(&Cli::parse([
            "bench-gate",
            "--baseline",
            &baseline,
            "--update",
            "--queries",
            "80",
            "--seed",
            "3",
            "--algorithm",
            "short-first",
        ])
        .unwrap())
        .unwrap();
        assert!(out.contains("recorded baseline"), "{out}");

        // an identical candidate passes. (Gating without --candidate
        // re-runs the spec in-process; concurrent tests solving without a
        // session would bleed into its counters, so the deterministic
        // re-run path is exercised by CI, where the process runs alone.)
        let text = std::fs::read_to_string(&baseline).unwrap();
        let file =
            mc3_obs::BaselineFile::from_json(&mc3_core::json::parse(&text).unwrap()).unwrap();
        let candidate = tmp("bench_gate_candidate.json");
        std::fs::write(&candidate, file.report.to_json().to_string_pretty()).unwrap();
        let out = run(&Cli::parse([
            "bench-gate",
            "--baseline",
            &baseline,
            "--candidate",
            &candidate,
        ])
        .unwrap())
        .unwrap();
        assert!(out.contains("bench-gate: PASS"), "{out}");

        // inflate one counter 2x in the candidate: must fail, naming it
        let mut file = file;
        let (name, val) = file
            .report
            .counters
            .iter()
            .find(|(_, &v)| v > 0)
            .map(|(n, &v)| (n.clone(), v))
            .unwrap();
        file.report.counters.insert(name.clone(), val * 2);
        std::fs::write(&candidate, file.report.to_json().to_string_pretty()).unwrap();
        let err = run(&Cli::parse([
            "bench-gate",
            "--baseline",
            &baseline,
            "--candidate",
            &candidate,
            "--wall-tol",
            "1000",
        ])
        .unwrap())
        .unwrap_err();
        assert!(err.contains("bench-gate: FAIL"), "{err}");
        assert!(err.contains(&format!("counter '{name}'")), "{err}");

        std::fs::remove_file(&baseline).ok();
        std::fs::remove_file(&candidate).ok();
    }

    #[test]
    fn profile_mem_renders_the_allocation_view() {
        let out = run(&Cli::parse(["profile", "--queries", "60", "--seed", "2", "--mem"]).unwrap())
            .unwrap();
        assert!(out.contains("allocations"), "{out}");
        assert!(out.contains("peak live bytes (session):"), "{out}");
    }

    #[test]
    fn profile_generates_solves_and_round_trips_json() {
        let json_path = tmp("profile_tel.json");
        let out = run(&Cli::parse([
            "profile",
            "--queries",
            "80",
            "--seed",
            "3",
            "--json",
            &json_path,
            "--top",
            "6",
        ])
        .unwrap())
        .unwrap();
        assert!(out.contains("profile of"), "{out}");
        assert!(out.contains("counters (non-zero, largest first):"), "{out}");
        let text = std::fs::read_to_string(&json_path).unwrap();
        let json = mc3_core::json::parse(&text).unwrap();
        let tel = mc3_telemetry::TelemetryReport::from_json(&json).unwrap();
        assert!(tel.counters.values().any(|&v| v > 0), "{}", tel.render());
        std::fs::remove_file(&json_path).ok();
    }
}
