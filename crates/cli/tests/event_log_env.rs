//! End-to-end check of the `MC3_LOG` event-log hookup: run the real `mc3`
//! binary with the sink enabled and assert well-formed JSONL events show
//! up with monotonically increasing sequence numbers.

use std::path::PathBuf;
use std::process::Command;

fn mc3() -> Command {
    Command::new(env!("CARGO_BIN_EXE_mc3"))
}

#[test]
fn mc3_log_env_writes_jsonl_events_to_file() {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR"));
    let dataset = dir.join("events-dataset.json");
    let events = dir.join("events.jsonl");
    let _ = std::fs::remove_file(&events);

    let out = mc3()
        .args([
            "generate",
            "--kind",
            "synthetic",
            "--queries",
            "40",
            "--seed",
            "5",
            "--out",
            dataset.to_str().expect("utf-8 tmpdir"),
        ])
        .output()
        .expect("run mc3 generate");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let out = mc3()
        .env("MC3_LOG", format!("debug:{}", events.display()))
        .args(["solve", dataset.to_str().expect("utf-8 tmpdir")])
        .output()
        .expect("run mc3 solve");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let text = std::fs::read_to_string(&events).expect("event log written");
    let lines: Vec<&str> = text.lines().collect();
    assert!(
        !lines.is_empty(),
        "solve must emit at least one debug event"
    );
    let mut prev_seq: i128 = -1;
    for line in &lines {
        let j = mc3_core::json::parse(line).expect("each line is one JSON object");
        for key in ["seq", "ts_ns", "level", "target", "msg"] {
            assert!(j.get(key).is_some(), "event missing '{key}': {line}");
        }
        let seq = i128::from(
            j.get("seq")
                .and_then(mc3_core::json::Json::as_u64)
                .expect("seq"),
        );
        assert!(seq > prev_seq, "sequence numbers must increase: {text}");
        prev_seq = seq;
    }
    // The dataset parse and at least one solver event use distinct targets.
    assert!(text.contains("\"target\":\"workload\""), "{text}");
}

#[test]
fn mc3_log_bad_level_warns_and_still_runs() {
    let out = mc3()
        .env("MC3_LOG", "chatty")
        .args(["help"])
        .output()
        .expect("run mc3 help");
    assert!(out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("MC3_LOG"), "bad level must warn: {stderr}");
}
