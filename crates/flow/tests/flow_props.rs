//! Property-based tests of the flow substrate: Dinic ≡ push-relabel,
//! max-flow = min-cut, WVC optimality against brute force, and
//! matching/König duality.
//!
//! Seeded-loop style (the workspace builds offline, without `proptest`):
//! each test replays a few hundred deterministic random cases from
//! [`mc3_core::rng::StdRng`], printing the seed on failure.

use mc3_core::rng::prelude::*;
use mc3_core::Weight;
use mc3_flow::{
    hopcroft_karp, koenig_vertex_cover, solve_bipartite_wvc, solve_bipartite_wvc_with,
    BipartiteGraph, BipartiteWvc, Dinic, FlowAlgorithm, FlowNetwork, PushRelabel,
};

const CASES: u64 = 250;

#[derive(Debug, Clone)]
struct RandomNet {
    n: usize,
    edges: Vec<(usize, usize, u64)>,
}

fn rand_net(rng: &mut StdRng) -> RandomNet {
    let n = rng.gen_range(2..10usize);
    let m = rng.gen_range(0..25usize);
    let edges = (0..m)
        .map(|_| {
            (
                rng.gen_range(0..n),
                rng.gen_range(0..n),
                rng.gen_range(0..25u64),
            )
        })
        .filter(|&(u, v, _)| u != v)
        .collect();
    RandomNet { n, edges }
}

fn build(net: &RandomNet) -> FlowNetwork {
    let mut g = FlowNetwork::new(net.n);
    for &(u, v, c) in &net.edges {
        g.add_edge(u, v, c);
    }
    g
}

#[test]
fn dinic_equals_push_relabel() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let net = rand_net(&mut rng);
        let mut g1 = build(&net);
        let mut g2 = build(&net);
        let f1 = Dinic::new(&mut g1).max_flow(0, net.n - 1);
        let f2 = PushRelabel::new(&mut g2).max_flow(0, net.n - 1);
        assert_eq!(f1, f2, "seed {seed}: {net:?}");
    }
}

#[test]
fn max_flow_equals_min_cut() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let net = rand_net(&mut rng);
        let mut g = build(&net);
        let f = Dinic::new(&mut g).max_flow(0, net.n - 1);
        let z = mc3_flow::source_side_of_min_cut(&g, 0);
        assert!(z[0], "source on source side, seed {seed}");
        assert!(
            !z[net.n - 1],
            "sink must be unreachable after max flow, seed {seed}"
        );
        let cut: u64 = net
            .edges
            .iter()
            .filter(|&&(u, v, _)| z[u] && !z[v])
            .map(|&(_, _, c)| c)
            .sum();
        assert_eq!(cut, f, "cut = flow, seed {seed}: {net:?}");
    }
}

#[test]
fn wvc_solvers_agree_and_cover() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let nl = rng.gen_range(1..6usize);
        let nr = rng.gen_range(1..6usize);
        let mut edges = Vec::new();
        for u in 0..nl {
            for v in 0..nr {
                if rng.gen_bool(0.5) {
                    edges.push((u as u32, v as u32));
                }
            }
        }
        let inst = BipartiteWvc {
            left_weights: (0..nl)
                .map(|_| Weight::new(rng.gen_range(0..20u64)))
                .collect(),
            right_weights: (0..nr)
                .map(|_| Weight::new(rng.gen_range(0..20u64)))
                .collect(),
            edges,
        };
        let a = solve_bipartite_wvc_with(&inst, FlowAlgorithm::Dinic).expect("solvable");
        let b = solve_bipartite_wvc_with(&inst, FlowAlgorithm::PushRelabel).expect("solvable");
        assert!(a.is_valid_cover(&inst), "dinic cover valid, seed {seed}");
        assert!(
            b.is_valid_cover(&inst),
            "push-relabel cover valid, seed {seed}"
        );
        assert_eq!(a.weight, b.weight, "optima agree, seed {seed}");
    }
}

#[test]
fn koenig_duality() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let nl = rng.gen_range(1..7usize);
        let nr = rng.gen_range(1..7usize);
        let mut g = BipartiteGraph::new(nl, nr);
        let mut edges = Vec::new();
        for u in 0..nl {
            for v in 0..nr {
                if rng.gen_bool(0.5) {
                    g.add_edge(u, v);
                    edges.push((u, v));
                }
            }
        }
        let m = hopcroft_karp(&g);
        let (cl, cr) = koenig_vertex_cover(&g, &m);
        let cover_size = cl.iter().filter(|&&c| c).count() + cr.iter().filter(|&&c| c).count();
        // König: min VC = max matching; cover covers all edges
        assert_eq!(cover_size, m.size, "König equality, seed {seed}");
        for (u, v) in edges {
            assert!(cl[u] || cr[v], "edge ({u},{v}) uncovered, seed {seed}");
        }
    }
}

#[test]
fn wvc_weight_never_exceeds_total() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let nl = rng.gen_range(1..5usize);
        let nr = rng.gen_range(1..5usize);
        let w = rng.gen_range(1..30u64);
        // selecting everything is always a cover, so the optimum is bounded
        let inst = BipartiteWvc {
            left_weights: vec![Weight::new(w); nl],
            right_weights: vec![Weight::new(w); nr],
            edges: (0..nl.min(nr)).map(|i| (i as u32, i as u32)).collect(),
        };
        let sol = solve_bipartite_wvc(&inst).expect("solvable");
        assert!(
            sol.weight <= Weight::new(w * (nl + nr) as u64),
            "bounded, seed {seed}"
        );
        // one endpoint per disjoint edge suffices
        assert_eq!(
            sol.weight,
            Weight::new(w * nl.min(nr) as u64),
            "exact, seed {seed}"
        );
    }
}
