//! Property-based tests of the flow substrate: Dinic ≡ push-relabel,
//! max-flow = min-cut, WVC optimality against brute force, and
//! matching/König duality.

use mc3_core::Weight;
use mc3_flow::{
    hopcroft_karp, koenig_vertex_cover, solve_bipartite_wvc, solve_bipartite_wvc_with,
    BipartiteGraph, BipartiteWvc, Dinic, FlowAlgorithm, FlowNetwork, PushRelabel,
};
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct RandomNet {
    n: usize,
    edges: Vec<(usize, usize, u64)>,
}

fn arb_net() -> impl Strategy<Value = RandomNet> {
    (2..10usize)
        .prop_flat_map(|n| {
            let edge = (0..n, 0..n, 0..25u64);
            (Just(n), prop::collection::vec(edge, 0..25))
        })
        .prop_map(|(n, edges)| RandomNet {
            n,
            edges: edges.into_iter().filter(|&(u, v, _)| u != v).collect(),
        })
}

fn build(net: &RandomNet) -> FlowNetwork {
    let mut g = FlowNetwork::new(net.n);
    for &(u, v, c) in &net.edges {
        g.add_edge(u, v, c);
    }
    g
}

proptest! {
    #[test]
    fn dinic_equals_push_relabel(net in arb_net()) {
        let mut g1 = build(&net);
        let mut g2 = build(&net);
        let f1 = Dinic::new(&mut g1).max_flow(0, net.n - 1);
        let f2 = PushRelabel::new(&mut g2).max_flow(0, net.n - 1);
        prop_assert_eq!(f1, f2);
    }

    #[test]
    fn max_flow_equals_min_cut(net in arb_net()) {
        let mut g = build(&net);
        let f = Dinic::new(&mut g).max_flow(0, net.n - 1);
        let z = mc3_flow::source_side_of_min_cut(&g, 0);
        prop_assert!(z[0]);
        prop_assert!(!z[net.n - 1], "sink must be unreachable after max flow");
        let cut: u64 = net
            .edges
            .iter()
            .filter(|&&(u, v, _)| z[u] && !z[v])
            .map(|&(_, _, c)| c)
            .sum();
        prop_assert_eq!(cut, f);
    }

    #[test]
    fn wvc_solvers_agree_and_cover(
        nl in 1..6usize,
        nr in 1..6usize,
        edge_bits in prop::collection::vec(any::<bool>(), 36),
        weights in prop::collection::vec(0..20u64, 12),
    ) {
        let mut edges = Vec::new();
        for u in 0..nl {
            for v in 0..nr {
                if edge_bits[u * 6 + v] {
                    edges.push((u as u32, v as u32));
                }
            }
        }
        let inst = BipartiteWvc {
            left_weights: (0..nl).map(|i| Weight::new(weights[i])).collect(),
            right_weights: (0..nr).map(|j| Weight::new(weights[6 + j])).collect(),
            edges,
        };
        let a = solve_bipartite_wvc_with(&inst, FlowAlgorithm::Dinic).unwrap();
        let b = solve_bipartite_wvc_with(&inst, FlowAlgorithm::PushRelabel).unwrap();
        prop_assert!(a.is_valid_cover(&inst));
        prop_assert!(b.is_valid_cover(&inst));
        prop_assert_eq!(a.weight, b.weight);
    }

    #[test]
    fn koenig_duality(
        nl in 1..7usize,
        nr in 1..7usize,
        edge_bits in prop::collection::vec(any::<bool>(), 49),
    ) {
        let mut g = BipartiteGraph::new(nl, nr);
        let mut edges = Vec::new();
        for u in 0..nl {
            for v in 0..nr {
                if edge_bits[u * 7 + v] {
                    g.add_edge(u, v);
                    edges.push((u, v));
                }
            }
        }
        let m = hopcroft_karp(&g);
        let (cl, cr) = koenig_vertex_cover(&g, &m);
        let cover_size = cl.iter().filter(|&&c| c).count() + cr.iter().filter(|&&c| c).count();
        // König: min VC = max matching; cover covers all edges
        prop_assert_eq!(cover_size, m.size);
        for (u, v) in edges {
            prop_assert!(cl[u] || cr[v]);
        }
    }

    #[test]
    fn wvc_weight_never_exceeds_total(nl in 1..5usize, nr in 1..5usize, seedw in 1..30u64) {
        // selecting everything is always a cover, so the optimum is bounded
        let inst = BipartiteWvc {
            left_weights: vec![Weight::new(seedw); nl],
            right_weights: vec![Weight::new(seedw); nr],
            edges: (0..nl.min(nr)).map(|i| (i as u32, i as u32)).collect(),
        };
        let sol = solve_bipartite_wvc(&inst).unwrap();
        prop_assert!(sol.weight <= Weight::new(seedw * (nl + nr) as u64));
        // one endpoint per disjoint edge suffices
        prop_assert_eq!(sol.weight, Weight::new(seedw * nl.min(nr) as u64));
    }
}
