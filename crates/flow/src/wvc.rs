//! Weighted Vertex Cover over bipartite graphs, solved exactly via Max-Flow
//! (Theorem 2.3 of the paper; the folklore reduction described in \[2\]).
//!
//! Construction: source `s` → each left node `u` with capacity `w(u)`; each
//! right node `v` → sink `t` with capacity `w(v)`; every bipartite edge
//! `(u, v)` gets "infinite" capacity (a finite sentinel exceeding the sum of
//! all finite node weights, so it can never be cut). The minimum `s–t` cut
//! then severs, per edge `(u, v)`, either `s→u` or `v→t`, i.e. selects a
//! vertex cover of minimum total weight. With `Z` the source side of the
//! cut, the cover is `{u ∈ L : u ∉ Z} ∪ {v ∈ R : v ∈ Z}`.
//!
//! Infinite node weights are supported (such nodes are never selected); the
//! solver reports an error if no finite-weight cover exists.

use crate::dinic::Dinic;
use crate::graph::FlowNetwork;
use crate::mincut::source_side_of_min_cut;
use crate::push_relabel::PushRelabel;
use mc3_core::{Mc3Error, Result, Weight};

/// Which max-flow algorithm the WVC reduction runs (the paper's
/// experimental study compared several and chose Dinic \[10\]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FlowAlgorithm {
    /// Dinic's algorithm — the paper's choice.
    #[default]
    Dinic,
    /// FIFO push-relabel with the gap heuristic.
    PushRelabel,
}

/// A bipartite weighted-vertex-cover instance.
#[derive(Debug, Clone)]
pub struct BipartiteWvc {
    /// Weights of the left-side vertices.
    pub left_weights: Vec<Weight>,
    /// Weights of the right-side vertices.
    pub right_weights: Vec<Weight>,
    /// Edges as `(left_index, right_index)` pairs.
    pub edges: Vec<(u32, u32)>,
}

/// A vertex cover of a [`BipartiteWvc`] instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WvcSolution {
    /// `true` for left vertices in the cover.
    pub in_cover_left: Vec<bool>,
    /// `true` for right vertices in the cover.
    pub in_cover_right: Vec<bool>,
    /// Total weight of the cover.
    pub weight: Weight,
}

impl WvcSolution {
    /// Checks that every edge of `inst` has at least one covered endpoint.
    pub fn is_valid_cover(&self, inst: &BipartiteWvc) -> bool {
        inst.edges
            .iter()
            .all(|&(u, v)| self.in_cover_left[u as usize] || self.in_cover_right[v as usize])
    }
}

/// Solves bipartite WVC exactly.
///
/// Runs in the time of one Dinic max-flow on a network with
/// `|L| + |R| + 2` nodes and `|L| + |R| + |E|` edges — `O(n)` nodes/edges
/// for the MC³ reduction of §4.
///
/// Errors with [`Mc3Error::Uncoverable`] if some edge has two
/// infinite-weight endpoints (no finite cover exists); the reported index is
/// the offending edge's position.
pub fn solve_bipartite_wvc(inst: &BipartiteWvc) -> Result<WvcSolution> {
    solve_bipartite_wvc_with(inst, FlowAlgorithm::Dinic)
}

/// [`solve_bipartite_wvc`] with an explicit max-flow algorithm.
pub fn solve_bipartite_wvc_with(
    inst: &BipartiteWvc,
    algorithm: FlowAlgorithm,
) -> Result<WvcSolution> {
    let _span = mc3_telemetry::span("wvc.solve");
    mc3_telemetry::span_add(mc3_telemetry::Counter::WvcSolves, 1);
    // Cheap infeasibility check (also catches what the flow would express
    // as a cut of sentinel weight).
    for (i, &(u, v)) in inst.edges.iter().enumerate() {
        if inst.left_weights[u as usize].is_infinite()
            && inst.right_weights[v as usize].is_infinite()
        {
            return Err(Mc3Error::Uncoverable { query_index: i });
        }
    }

    let nl = inst.left_weights.len();
    let nr = inst.right_weights.len();
    let finite_sum: u64 = inst
        .left_weights
        .iter()
        .chain(inst.right_weights.iter())
        .filter_map(|w| w.finite())
        .fold(0u64, u64::saturating_add);
    let cap_inf = finite_sum.checked_add(1).ok_or(Mc3Error::CostOverflow)?;
    let cap_of = |w: Weight| w.finite().unwrap_or(cap_inf).min(cap_inf);

    // node layout: 0 = source, 1..=nl left, nl+1..=nl+nr right, last = sink
    let s = 0usize;
    let t = nl + nr + 1;
    let mut g = FlowNetwork::with_capacity(nl + nr + 2, nl + nr + inst.edges.len());
    for (i, &w) in inst.left_weights.iter().enumerate() {
        g.add_edge(s, 1 + i, cap_of(w));
    }
    for (j, &w) in inst.right_weights.iter().enumerate() {
        g.add_edge(1 + nl + j, t, cap_of(w));
    }
    for &(u, v) in &inst.edges {
        g.add_edge(1 + u as usize, 1 + nl + v as usize, cap_inf);
    }

    let flow = match algorithm {
        FlowAlgorithm::Dinic => Dinic::new(&mut g).max_flow(s, t),
        FlowAlgorithm::PushRelabel => PushRelabel::new(&mut g).max_flow(s, t),
    };
    if flow >= cap_inf {
        // Can only happen via a path whose both node arcs are "infinite";
        // already excluded above, so this is a genuine invariant violation.
        return Err(Mc3Error::Internal(
            "bipartite WVC min cut reached the infinite sentinel".to_owned(),
        ));
    }

    let z = source_side_of_min_cut(&g, s);
    let in_cover_left: Vec<bool> = (0..nl).map(|i| !z[1 + i]).collect();
    let in_cover_right: Vec<bool> = (0..nr).map(|j| z[1 + nl + j]).collect();

    let weight: Weight = in_cover_left
        .iter()
        .enumerate()
        .filter(|&(_, &c)| c)
        .map(|(i, _)| inst.left_weights[i])
        .chain(
            in_cover_right
                .iter()
                .enumerate()
                .filter(|&(_, &c)| c)
                .map(|(j, _)| inst.right_weights[j]),
        )
        .sum();
    debug_assert_eq!(
        weight.finite(),
        Some(flow),
        "cut weight must equal max flow"
    );

    // Certificate (verify feature): the min cut must induce a genuine
    // vertex cover, and its weight must equal the max-flow value. Any
    // feasible flow lower-bounds every cover's weight (weak LP duality),
    // so weight == flow proves the cover optimal.
    #[cfg(feature = "verify")]
    {
        let _vspan = mc3_telemetry::span("verify.wvc");
        assert!(
            inst.edges
                .iter()
                .all(|&(u, v)| in_cover_left[u as usize] || in_cover_right[v as usize]),
            "min cut did not induce a vertex cover"
        );
        assert_eq!(
            weight.finite(),
            Some(flow),
            "cover weight != max-flow value: WVC optimality certificate failed"
        );
        mc3_telemetry::span_add(mc3_telemetry::Counter::VerifyWvcChecks, 1);
    }

    Ok(WvcSolution {
        in_cover_left,
        in_cover_right,
        weight,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn w(v: u64) -> Weight {
        Weight::new(v)
    }

    /// Brute-force optimum for small instances.
    fn brute_force(inst: &BipartiteWvc) -> Weight {
        let nl = inst.left_weights.len();
        let nr = inst.right_weights.len();
        assert!(nl + nr <= 20);
        let mut best = Weight::INFINITE;
        for mask in 0u32..(1 << (nl + nr)) {
            let lcov = |i: usize| mask & (1 << i) != 0;
            let rcov = |j: usize| mask & (1 << (nl + j)) != 0;
            if !inst
                .edges
                .iter()
                .all(|&(u, v)| lcov(u as usize) || rcov(v as usize))
            {
                continue;
            }
            let mut total = Weight::ZERO;
            for i in 0..nl {
                if lcov(i) {
                    total = total + inst.left_weights[i];
                }
            }
            for j in 0..nr {
                if rcov(j) {
                    total = total + inst.right_weights[j];
                }
            }
            best = best.min(total);
        }
        best
    }

    #[test]
    fn single_edge_picks_cheaper_side() {
        let inst = BipartiteWvc {
            left_weights: vec![w(5)],
            right_weights: vec![w(3)],
            edges: vec![(0, 0)],
        };
        let sol = solve_bipartite_wvc(&inst).unwrap();
        assert_eq!(sol.weight, w(3));
        assert!(sol.in_cover_right[0]);
        assert!(!sol.in_cover_left[0]);
        assert!(sol.is_valid_cover(&inst));
    }

    #[test]
    fn shared_left_vertex_beats_pairs() {
        // One left vertex of weight 2 touching three right vertices of
        // weight 1 each: covering left (2) beats covering rights (3).
        let inst = BipartiteWvc {
            left_weights: vec![w(2)],
            right_weights: vec![w(1), w(1), w(1)],
            edges: vec![(0, 0), (0, 1), (0, 2)],
        };
        let sol = solve_bipartite_wvc(&inst).unwrap();
        assert_eq!(sol.weight, w(2));
        assert!(sol.in_cover_left[0]);
    }

    #[test]
    fn infinite_weight_nodes_are_never_selected() {
        let inst = BipartiteWvc {
            left_weights: vec![Weight::INFINITE],
            right_weights: vec![w(9)],
            edges: vec![(0, 0)],
        };
        let sol = solve_bipartite_wvc(&inst).unwrap();
        assert_eq!(sol.weight, w(9));
        assert!(!sol.in_cover_left[0]);
    }

    #[test]
    fn doubly_infinite_edge_is_uncoverable() {
        let inst = BipartiteWvc {
            left_weights: vec![Weight::INFINITE],
            right_weights: vec![Weight::INFINITE],
            edges: vec![(0, 0)],
        };
        assert!(matches!(
            solve_bipartite_wvc(&inst),
            Err(Mc3Error::Uncoverable { query_index: 0 })
        ));
    }

    #[test]
    fn empty_instance() {
        let inst = BipartiteWvc {
            left_weights: vec![w(1), w(2)],
            right_weights: vec![],
            edges: vec![],
        };
        let sol = solve_bipartite_wvc(&inst).unwrap();
        assert_eq!(sol.weight, Weight::ZERO);
    }

    #[test]
    fn zero_weight_vertices_cover_for_free() {
        let inst = BipartiteWvc {
            left_weights: vec![Weight::ZERO],
            right_weights: vec![w(100)],
            edges: vec![(0, 0)],
        };
        let sol = solve_bipartite_wvc(&inst).unwrap();
        assert_eq!(sol.weight, Weight::ZERO);
        assert!(sol.is_valid_cover(&inst));
    }

    #[test]
    fn matches_brute_force_on_random_instances() {
        use mc3_core::rng::prelude::*;
        let mut rng = StdRng::seed_from_u64(0xc0ffee);
        for _ in 0..200 {
            let nl = rng.gen_range(1..=5usize);
            let nr = rng.gen_range(1..=5usize);
            let mut edges = Vec::new();
            for u in 0..nl as u32 {
                for v in 0..nr as u32 {
                    if rng.gen_bool(0.4) {
                        edges.push((u, v));
                    }
                }
            }
            let inst = BipartiteWvc {
                left_weights: (0..nl).map(|_| w(rng.gen_range(0..20))).collect(),
                right_weights: (0..nr).map(|_| w(rng.gen_range(0..20))).collect(),
                edges,
            };
            let sol = solve_bipartite_wvc(&inst).unwrap();
            assert!(sol.is_valid_cover(&inst));
            assert_eq!(sol.weight, brute_force(&inst), "instance: {inst:?}");
        }
    }
}
