//! Residual flow network representation.
//!
//! Edges are stored in pairs: edge `2i` is the forward edge, `2i ^ 1` its
//! residual twin, so residual updates are branch-free index arithmetic.
//! Capacities are `u64`; callers model "infinite" capacities with a finite
//! sentinel strictly larger than any possible cut (e.g. the sum of all
//! finite node weights plus one), keeping all arithmetic exact.

use mc3_core::u32_of;

/// Node index within a [`FlowNetwork`].
pub type NodeId = usize;

/// Identifier of a forward edge, as returned by [`FlowNetwork::add_edge`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EdgeId(pub(crate) u32);

#[derive(Debug, Clone)]
pub(crate) struct Edge {
    pub(crate) to: u32,
    /// Remaining residual capacity.
    pub(crate) cap: u64,
}

/// A directed flow network with residual bookkeeping.
#[derive(Debug, Clone)]
pub struct FlowNetwork {
    pub(crate) edges: Vec<Edge>,
    /// `adj[v]` holds indices into `edges` of all arcs out of `v`
    /// (forward and residual).
    pub(crate) adj: Vec<Vec<u32>>,
}

impl FlowNetwork {
    /// A network with `num_nodes` nodes and no edges.
    pub fn new(num_nodes: usize) -> FlowNetwork {
        FlowNetwork {
            edges: Vec::new(),
            adj: vec![Vec::new(); num_nodes],
        }
    }

    /// A network preallocating adjacency for `num_edges` edges.
    pub fn with_capacity(num_nodes: usize, num_edges: usize) -> FlowNetwork {
        let mut n = FlowNetwork::new(num_nodes);
        n.edges.reserve(2 * num_edges);
        n
    }

    /// Number of nodes.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.adj.len()
    }

    /// Number of forward edges added.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.edges.len() / 2
    }

    /// Adds a directed edge `from → to` with capacity `cap`; the residual
    /// twin starts at capacity 0.
    pub fn add_edge(&mut self, from: NodeId, to: NodeId, cap: u64) -> EdgeId {
        debug_assert!(from < self.num_nodes() && to < self.num_nodes());
        let id = u32_of(self.edges.len());
        self.edges.push(Edge {
            to: u32_of(to),
            cap,
        });
        self.edges.push(Edge {
            to: u32_of(from),
            cap: 0,
        });
        self.adj[from].push(id);
        self.adj[to].push(id + 1);
        EdgeId(id)
    }

    /// The flow currently routed through a forward edge (its residual twin's
    /// accumulated capacity).
    pub fn flow(&self, e: EdgeId) -> u64 {
        self.edges[(e.0 ^ 1) as usize].cap
    }

    /// Remaining capacity of a forward edge.
    pub fn residual(&self, e: EdgeId) -> u64 {
        self.edges[e.0 as usize].cap
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_edge_creates_residual_twin() {
        let mut g = FlowNetwork::new(2);
        let e = g.add_edge(0, 1, 10);
        assert_eq!(g.num_nodes(), 2);
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.residual(e), 10);
        assert_eq!(g.flow(e), 0);
    }

    #[test]
    fn adjacency_includes_residual_arcs() {
        let mut g = FlowNetwork::new(3);
        g.add_edge(0, 1, 1);
        g.add_edge(1, 2, 1);
        assert_eq!(g.adj[0].len(), 1);
        assert_eq!(g.adj[1].len(), 2); // residual of 0→1 plus forward 1→2
        assert_eq!(g.adj[2].len(), 1);
    }
}
