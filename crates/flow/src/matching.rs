//! Hopcroft–Karp maximum bipartite matching and König minimum vertex cover.
//!
//! This powers the **Mixed** baseline of the predecessor paper \[13\]: with
//! uniform classifier costs and `k ≤ 2`, minimum-weight vertex cover
//! degenerates to minimum-cardinality vertex cover, which by König's theorem
//! equals maximum matching on bipartite graphs.

use mc3_core::u32_of;

/// Adjacency-list bipartite graph (`left → right` edges only).
#[derive(Debug, Clone)]
pub struct BipartiteGraph {
    /// `adj[u]` lists the right-side neighbours of left vertex `u`.
    pub adj: Vec<Vec<u32>>,
    /// Number of right-side vertices.
    pub num_right: usize,
}

impl BipartiteGraph {
    /// A graph with `num_left` left and `num_right` right vertices.
    pub fn new(num_left: usize, num_right: usize) -> BipartiteGraph {
        BipartiteGraph {
            adj: vec![Vec::new(); num_left],
            num_right,
        }
    }

    /// Adds an edge `left u` — `right v`.
    pub fn add_edge(&mut self, u: usize, v: usize) {
        debug_assert!(v < self.num_right);
        self.adj[u].push(u32_of(v));
    }

    /// Number of left vertices.
    pub fn num_left(&self) -> usize {
        self.adj.len()
    }
}

/// A maximum matching: `pair_left[u]`/`pair_right[v]` hold the matched
/// partner or `u32::MAX` if exposed.
#[derive(Debug, Clone)]
pub struct Matching {
    /// Matched right partner of each left vertex (`u32::MAX` if unmatched).
    pub pair_left: Vec<u32>,
    /// Matched left partner of each right vertex (`u32::MAX` if unmatched).
    pub pair_right: Vec<u32>,
    /// Matching cardinality.
    pub size: usize,
}

const UNMATCHED: u32 = u32::MAX;
const INF: u32 = u32::MAX;

/// Computes a maximum matching in `O(E √V)`.
pub fn hopcroft_karp(g: &BipartiteGraph) -> Matching {
    let nl = g.num_left();
    let nr = g.num_right;
    let mut pair_left = vec![UNMATCHED; nl];
    let mut pair_right = vec![UNMATCHED; nr];
    let mut dist = vec![INF; nl];
    let mut queue: Vec<u32> = Vec::with_capacity(nl);
    let mut size = 0usize;

    loop {
        // BFS from exposed left vertices, layering by alternating paths.
        queue.clear();
        for u in 0..nl {
            if pair_left[u] == UNMATCHED {
                dist[u] = 0;
                queue.push(u32_of(u));
            } else {
                dist[u] = INF;
            }
        }
        let mut found = false;
        let mut head = 0;
        while head < queue.len() {
            let u = queue[head] as usize;
            head += 1;
            for &v in &g.adj[u] {
                let w = pair_right[v as usize];
                if w == UNMATCHED {
                    found = true;
                } else if dist[w as usize] == INF {
                    dist[w as usize] = dist[u] + 1;
                    queue.push(w);
                }
            }
        }
        if !found {
            break;
        }
        // DFS augmentation along the layered graph.
        for u in 0..nl {
            if pair_left[u] == UNMATCHED
                && try_augment(g, u, &mut pair_left, &mut pair_right, &mut dist)
            {
                size += 1;
            }
        }
    }

    Matching {
        pair_left,
        pair_right,
        size,
    }
}

fn try_augment(
    g: &BipartiteGraph,
    u: usize,
    pair_left: &mut [u32],
    pair_right: &mut [u32],
    dist: &mut [u32],
) -> bool {
    for &v in &g.adj[u] {
        let w = pair_right[v as usize];
        let ok = if w == UNMATCHED {
            true
        } else if dist[w as usize] == dist[u] + 1 {
            try_augment(g, w as usize, pair_left, pair_right, dist)
        } else {
            false
        };
        if ok {
            pair_left[u] = v;
            pair_right[v as usize] = u32_of(u);
            return true;
        }
    }
    dist[u] = INF;
    false
}

/// Extracts a minimum vertex cover from a maximum matching via König's
/// theorem: with `Z` the set of vertices reachable from exposed left
/// vertices by alternating paths, the cover is `(L \ Z) ∪ (R ∩ Z)`.
///
/// Returns `(in_cover_left, in_cover_right)`; the cover's cardinality equals
/// `matching.size`.
pub fn koenig_vertex_cover(g: &BipartiteGraph, matching: &Matching) -> (Vec<bool>, Vec<bool>) {
    let nl = g.num_left();
    let nr = g.num_right;
    let mut z_left = vec![false; nl];
    let mut z_right = vec![false; nr];
    let mut stack: Vec<u32> = Vec::new();
    for (u, z) in z_left.iter_mut().enumerate() {
        if matching.pair_left[u] == UNMATCHED {
            *z = true;
            stack.push(u32_of(u));
        }
    }
    while let Some(u) = stack.pop() {
        for &v in &g.adj[u as usize] {
            // travel unmatched edge L→R
            if matching.pair_left[u as usize] == v {
                continue;
            }
            if !z_right[v as usize] {
                z_right[v as usize] = true;
                // travel matched edge R→L
                let w = matching.pair_right[v as usize];
                if w != UNMATCHED && !z_left[w as usize] {
                    z_left[w as usize] = true;
                    stack.push(w);
                }
            }
        }
    }
    let in_cover_left: Vec<bool> = z_left.iter().map(|&z| !z).collect();
    (in_cover_left, z_right)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph(nl: usize, nr: usize, edges: &[(usize, usize)]) -> BipartiteGraph {
        let mut g = BipartiteGraph::new(nl, nr);
        for &(u, v) in edges {
            g.add_edge(u, v);
        }
        g
    }

    #[test]
    fn perfect_matching() {
        let g = graph(3, 3, &[(0, 0), (0, 1), (1, 0), (2, 2)]);
        let m = hopcroft_karp(&g);
        assert_eq!(m.size, 3);
    }

    #[test]
    fn augmenting_path_needed() {
        // Greedy could match 0-0 and strand 1; HK must find the alternating path.
        let g = graph(2, 2, &[(0, 0), (0, 1), (1, 0)]);
        let m = hopcroft_karp(&g);
        assert_eq!(m.size, 2);
    }

    #[test]
    fn star_graph_matches_once() {
        let g = graph(1, 5, &[(0, 0), (0, 1), (0, 2), (0, 3), (0, 4)]);
        let m = hopcroft_karp(&g);
        assert_eq!(m.size, 1);
    }

    #[test]
    fn empty_graph() {
        let g = graph(3, 3, &[]);
        let m = hopcroft_karp(&g);
        assert_eq!(m.size, 0);
        let (cl, cr) = koenig_vertex_cover(&g, &m);
        assert!(cl.iter().all(|&c| !c));
        assert!(cr.iter().all(|&c| !c));
    }

    #[test]
    fn koenig_cover_size_equals_matching_and_covers_all_edges() {
        use mc3_core::rng::prelude::*;
        let mut rng = StdRng::seed_from_u64(99);
        for _ in 0..200 {
            let nl = rng.gen_range(1..=7usize);
            let nr = rng.gen_range(1..=7usize);
            let mut edges = Vec::new();
            for u in 0..nl {
                for v in 0..nr {
                    if rng.gen_bool(0.35) {
                        edges.push((u, v));
                    }
                }
            }
            let g = graph(nl, nr, &edges);
            let m = hopcroft_karp(&g);
            let (cl, cr) = koenig_vertex_cover(&g, &m);
            let cover_size = cl.iter().filter(|&&c| c).count() + cr.iter().filter(|&&c| c).count();
            assert_eq!(cover_size, m.size, "König size mismatch");
            for &(u, v) in &edges {
                assert!(cl[u] || cr[v], "edge ({u},{v}) uncovered");
            }
            // matching is a valid matching
            for u in 0..nl {
                let v = m.pair_left[u];
                if v != u32::MAX {
                    assert_eq!(m.pair_right[v as usize], u as u32);
                    assert!(edges.contains(&(u, v as usize)));
                }
            }
        }
    }

    #[test]
    fn matching_is_maximum_against_brute_force() {
        use mc3_core::rng::prelude::*;
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            let nl = rng.gen_range(1..=5usize);
            let nr = rng.gen_range(1..=5usize);
            let mut edges = Vec::new();
            for u in 0..nl {
                for v in 0..nr {
                    if rng.gen_bool(0.4) {
                        edges.push((u, v));
                    }
                }
            }
            let g = graph(nl, nr, &edges);
            let m = hopcroft_karp(&g);
            // brute force maximum matching over edge subsets
            let mut best = 0usize;
            for mask in 0u32..(1 << edges.len().min(20)) {
                let mut used_l = 0u32;
                let mut used_r = 0u32;
                let mut ok = true;
                let mut cnt = 0usize;
                for (i, &(u, v)) in edges.iter().enumerate() {
                    if mask & (1 << i) != 0 {
                        if used_l & (1 << u) != 0 || used_r & (1 << v) != 0 {
                            ok = false;
                            break;
                        }
                        used_l |= 1 << u;
                        used_r |= 1 << v;
                        cnt += 1;
                    }
                }
                if ok {
                    best = best.max(cnt);
                }
            }
            assert_eq!(m.size, best);
        }
    }
}
