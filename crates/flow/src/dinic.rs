//! Dinic's max-flow algorithm (Dinic 1970, the paper's reference \[10\]).
//!
//! Level-graph BFS phases plus DFS blocking flows with per-node arc
//! pointers. On the bipartite unit-ish networks produced by the WVC
//! reduction this is the algorithm the paper found fastest (§6.1); its
//! general bound is `O(V²E)`, improving to `O(E√V)` on unit networks.

use crate::graph::{FlowNetwork, NodeId};
use mc3_core::u32_of;

/// Dinic max-flow solver state over a [`FlowNetwork`].
///
/// # Example
///
/// ```
/// use mc3_flow::{Dinic, FlowNetwork};
///
/// let mut g = FlowNetwork::new(4);
/// g.add_edge(0, 1, 3);
/// g.add_edge(0, 2, 2);
/// g.add_edge(1, 3, 2);
/// g.add_edge(2, 3, 3);
/// g.add_edge(1, 2, 1);
/// let flow = Dinic::new(&mut g).max_flow(0, 3);
/// assert_eq!(flow, 5);
/// ```
pub struct Dinic<'a> {
    g: &'a mut FlowNetwork,
    level: Vec<i32>,
    iter: Vec<usize>,
    queue: Vec<u32>,
    path: Vec<usize>,
}

impl<'a> Dinic<'a> {
    /// Prepares solver state for `g`.
    pub fn new(g: &'a mut FlowNetwork) -> Dinic<'a> {
        let n = g.num_nodes();
        Dinic {
            g,
            level: vec![-1; n],
            iter: vec![0; n],
            queue: Vec::with_capacity(n),
            // DFS path stack: a simple path visits each node at most once
            path: Vec::with_capacity(n),
        }
    }

    /// Computes the maximum `s → t` flow, leaving the network in its final
    /// residual state (for min-cut extraction).
    pub fn max_flow(&mut self, s: NodeId, t: NodeId) -> u64 {
        assert_ne!(s, t, "source and sink must differ");
        let _span = mc3_telemetry::span("dinic.max_flow");
        let mut flow: u64 = 0;
        let mut phases = 0u64;
        let mut paths = 0u64;
        let mut visits = 0u64;
        while self.bfs(s, t) {
            phases += 1;
            visits += self.queue.len() as u64;
            self.iter.iter_mut().for_each(|i| *i = 0);
            let (f, p) = self.blocking_flow(s, t);
            flow += f;
            paths += p;
        }
        mc3_telemetry::span_add(mc3_telemetry::Counter::DinicPhases, phases);
        mc3_telemetry::span_add(mc3_telemetry::Counter::DinicAugmentingPaths, paths);
        mc3_telemetry::span_add(mc3_telemetry::Counter::DinicBfsVisits, visits);
        mc3_obs::debug(
            "flow",
            "dinic max-flow done",
            &[
                ("value", flow.into()),
                ("phases", phases.into()),
                ("augmenting_paths", paths.into()),
            ],
        );
        #[cfg(feature = "verify")]
        {
            let _vspan = mc3_telemetry::span("verify.max_flow");
            crate::verify::assert_max_flow(self.g, s, t, flow);
            mc3_telemetry::span_add(mc3_telemetry::Counter::VerifyFlowChecks, 1);
        }
        flow
    }

    /// Sends a blocking flow through the current level graph with an
    /// explicit path stack (no recursion — safe on arbitrarily deep
    /// networks). Returns `(flow, augmenting paths)`.
    fn blocking_flow(&mut self, s: NodeId, t: NodeId) -> (u64, u64) {
        let mut total = 0u64;
        let mut paths = 0u64;
        self.path.clear(); // edge ids along the path; buffer reused across phases
        let mut v = s;
        loop {
            if v == t {
                // augment by the bottleneck, then retreat to the tail of
                // the first saturated edge and keep searching from there
                let delta = self
                    .path
                    .iter()
                    .map(|&ei| self.g.edges[ei].cap)
                    .min()
                    // audit:allow(no-unwrap-in-lib) v == t and s != t, so the DFS path is non-empty
                    .expect("path to t is non-empty");
                for &ei in &self.path {
                    self.g.edges[ei].cap -= delta;
                    self.g.edges[ei ^ 1].cap += delta;
                }
                total += delta;
                paths += 1;
                let first_sat = self
                    .path
                    .iter()
                    .position(|&ei| self.g.edges[ei].cap == 0)
                    // audit:allow(no-unwrap-in-lib) delta is the path minimum, so some edge hit zero
                    .expect("the bottleneck edge is saturated");
                v = if first_sat == 0 {
                    s
                } else {
                    self.g.edges[self.path[first_sat - 1]].to as usize
                };
                self.path.truncate(first_sat);
                continue;
            }
            if self.iter[v] < self.g.adj[v].len() {
                let ei = self.g.adj[v][self.iter[v]] as usize;
                let (to, cap) = {
                    let e = &self.g.edges[ei];
                    (e.to as usize, e.cap)
                };
                if cap > 0 && self.level[v] < self.level[to] {
                    // audit:allow(no-alloc-in-hot-loops) reviewed: push into the preallocated DFS path stack (capacity = node count, a simple path never exceeds it)
                    self.path.push(ei);
                    v = to;
                } else {
                    self.iter[v] += 1;
                }
            } else {
                // dead end: retreat
                if v == s {
                    return (total, paths);
                }
                // audit:allow(no-unwrap-in-lib) v != s here, so the path stack is non-empty
                let ei = self.path.pop().expect("dead end has a parent edge");
                let parent = self.g.edges[ei ^ 1].to as usize;
                self.iter[parent] += 1;
                v = parent;
            }
        }
    }

    /// Builds the level graph; returns whether `t` is reachable.
    fn bfs(&mut self, s: NodeId, t: NodeId) -> bool {
        self.level.iter_mut().for_each(|l| *l = -1);
        self.queue.clear();
        self.level[s] = 0;
        self.queue.push(u32_of(s));
        let mut head = 0;
        while head < self.queue.len() {
            let v = self.queue[head] as usize;
            head += 1;
            for &ei in &self.g.adj[v] {
                let e = &self.g.edges[ei as usize];
                if e.cap > 0 && self.level[e.to as usize] < 0 {
                    self.level[e.to as usize] = self.level[v] + 1;
                    // audit:allow(no-alloc-in-hot-loops) reviewed: reused BFS queue member buffer, cleared not freed per phase
                    self.queue.push(e.to);
                }
            }
        }
        self.level[t] >= 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_edge() {
        let mut g = FlowNetwork::new(2);
        g.add_edge(0, 1, 7);
        assert_eq!(Dinic::new(&mut g).max_flow(0, 1), 7);
    }

    #[test]
    fn disconnected_is_zero() {
        let mut g = FlowNetwork::new(3);
        g.add_edge(0, 1, 5);
        assert_eq!(Dinic::new(&mut g).max_flow(0, 2), 0);
    }

    #[test]
    fn classic_textbook_network() {
        // CLRS figure: max flow 23
        let mut g = FlowNetwork::new(6);
        g.add_edge(0, 1, 16);
        g.add_edge(0, 2, 13);
        g.add_edge(1, 2, 10);
        g.add_edge(2, 1, 4);
        g.add_edge(1, 3, 12);
        g.add_edge(3, 2, 9);
        g.add_edge(2, 4, 14);
        g.add_edge(4, 3, 7);
        g.add_edge(3, 5, 20);
        g.add_edge(4, 5, 4);
        assert_eq!(Dinic::new(&mut g).max_flow(0, 5), 23);
    }

    #[test]
    fn parallel_edges_accumulate() {
        let mut g = FlowNetwork::new(2);
        g.add_edge(0, 1, 3);
        g.add_edge(0, 1, 4);
        assert_eq!(Dinic::new(&mut g).max_flow(0, 1), 7);
    }

    #[test]
    fn bipartite_unit_network_equals_matching() {
        // L = {1,2,3}, R = {4,5,6}; perfect matching exists
        let mut g = FlowNetwork::new(8);
        let (s, t) = (0, 7);
        for l in 1..=3 {
            g.add_edge(s, l, 1);
        }
        for r in 4..=6 {
            g.add_edge(r, t, 1);
        }
        g.add_edge(1, 4, 1);
        g.add_edge(1, 5, 1);
        g.add_edge(2, 4, 1);
        g.add_edge(3, 6, 1);
        assert_eq!(Dinic::new(&mut g).max_flow(s, t), 3);
    }

    #[test]
    fn flow_conservation_holds() {
        let mut g = FlowNetwork::new(5);
        let edges = [
            (0usize, 1usize, 10u64),
            (0, 2, 10),
            (1, 3, 4),
            (1, 2, 2),
            (2, 3, 9),
            (3, 4, 10),
            (2, 4, 2),
        ];
        let ids: Vec<_> = edges
            .iter()
            .map(|&(u, v, c)| (g.add_edge(u, v, c), u, v))
            .collect();
        let total = Dinic::new(&mut g).max_flow(0, 4);
        assert_eq!(total, 12);
        // net flow at internal nodes is zero
        for node in 1..=3usize {
            let mut net: i128 = 0;
            for &(e, u, v) in &ids {
                let f = g.flow(e) as i128;
                if v == node {
                    net += f;
                }
                if u == node {
                    net -= f;
                }
            }
            assert_eq!(net, 0, "conservation violated at node {node}");
        }
    }

    #[test]
    fn very_deep_chain_does_not_overflow_the_stack() {
        // 200k-node path — the old recursive DFS would blow the stack here
        let n = 200_000;
        let mut g = FlowNetwork::new(n);
        for v in 0..n - 1 {
            g.add_edge(v, v + 1, 3);
        }
        assert_eq!(Dinic::new(&mut g).max_flow(0, n - 1), 3);
    }

    #[test]
    fn multiple_augmenting_paths_in_one_phase() {
        // two disjoint 2-hop paths; blocking flow must find both in phase 1
        let mut g = FlowNetwork::new(6);
        g.add_edge(0, 1, 1);
        g.add_edge(1, 5, 1);
        g.add_edge(0, 2, 1);
        g.add_edge(2, 5, 1);
        assert_eq!(Dinic::new(&mut g).max_flow(0, 5), 2);
    }

    #[test]
    fn large_capacities_do_not_overflow() {
        let big = u64::MAX / 4;
        let mut g = FlowNetwork::new(3);
        g.add_edge(0, 1, big);
        g.add_edge(1, 2, big);
        assert_eq!(Dinic::new(&mut g).max_flow(0, 2), big);
    }
}
