//! Minimum-cut extraction from a residual network.

use crate::graph::{FlowNetwork, NodeId};
use mc3_core::u32_of;

/// After a max-flow computation, returns the characteristic vector of the
/// source side `Z` of a minimum `s–t` cut: `Z` is the set of nodes reachable
/// from `s` in the residual graph. By max-flow/min-cut, the edges from `Z`
/// to its complement form a minimum cut.
pub fn source_side_of_min_cut(g: &FlowNetwork, s: NodeId) -> Vec<bool> {
    let mut reach = vec![false; g.num_nodes()];
    let mut queue = Vec::with_capacity(g.num_nodes());
    reach[s] = true;
    queue.push(u32_of(s));
    let mut head = 0;
    while head < queue.len() {
        let v = queue[head] as usize;
        head += 1;
        for &ei in &g.adj[v] {
            let e = &g.edges[ei as usize];
            if e.cap > 0 && !reach[e.to as usize] {
                reach[e.to as usize] = true;
                queue.push(e.to);
            }
        }
    }
    reach
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dinic::Dinic;

    #[test]
    fn cut_separates_source_and_sink() {
        let mut g = FlowNetwork::new(4);
        g.add_edge(0, 1, 1);
        g.add_edge(1, 2, 100);
        g.add_edge(2, 3, 1);
        let f = Dinic::new(&mut g).max_flow(0, 3);
        assert_eq!(f, 1);
        let z = source_side_of_min_cut(&g, 0);
        assert!(z[0]);
        assert!(!z[3]);
    }

    #[test]
    fn cut_capacity_equals_flow() {
        let mut g = FlowNetwork::new(5);
        let edges = [
            (0usize, 1usize, 3u64),
            (0, 2, 5),
            (1, 3, 2),
            (2, 3, 2),
            (1, 4, 1),
            (3, 4, 10),
        ];
        let ids: Vec<_> = edges
            .iter()
            .map(|&(u, v, c)| (g.add_edge(u, v, c), u, v, c))
            .collect();
        let f = Dinic::new(&mut g).max_flow(0, 4);
        let z = source_side_of_min_cut(&g, 0);
        let cut: u64 = ids
            .iter()
            .filter(|&&(_, u, v, _)| z[u] && !z[v])
            .map(|&(_, _, _, c)| c)
            .sum();
        assert_eq!(cut, f);
    }

    #[test]
    fn zero_flow_reaches_everything_with_capacity() {
        let mut g = FlowNetwork::new(3);
        g.add_edge(0, 1, 4);
        // no path 0→2
        let f = Dinic::new(&mut g).max_flow(0, 2);
        assert_eq!(f, 0);
        let z = source_side_of_min_cut(&g, 0);
        assert_eq!(z, vec![true, true, false]);
    }
}
