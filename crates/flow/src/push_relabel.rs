//! FIFO push–relabel max-flow with the gap heuristic.
//!
//! The paper's experimental study evaluated several max-flow algorithms on
//! the bipartite WVC networks (citing the bipartite-optimized variants of
//! Ahuja–Orlin–Stein–Tarjan \[1\]) before settling on Dinic \[10\]. This
//! second implementation reproduces that comparison (`ablation-flow`
//! benchmarks) and doubles as a correctness cross-check: both algorithms
//! must agree on every instance.

use crate::graph::{FlowNetwork, NodeId};
use mc3_core::u32_of;
use std::collections::VecDeque;

/// FIFO push–relabel solver over a [`FlowNetwork`].
pub struct PushRelabel<'a> {
    g: &'a mut FlowNetwork,
    excess: Vec<u64>,
    height: Vec<u32>,
    /// number of nodes at each height (gap heuristic)
    height_count: Vec<u32>,
    active: VecDeque<u32>,
    in_queue: Vec<bool>,
    pushes: u64,
    relabels: u64,
    gap_firings: u64,
}

impl<'a> PushRelabel<'a> {
    /// Prepares solver state for `g`.
    pub fn new(g: &'a mut FlowNetwork) -> PushRelabel<'a> {
        let n = g.num_nodes();
        PushRelabel {
            g,
            excess: vec![0; n],
            height: vec![0; n],
            height_count: vec![0; 2 * n + 1],
            active: VecDeque::new(),
            in_queue: vec![false; n],
            pushes: 0,
            relabels: 0,
            gap_firings: 0,
        }
    }

    /// Computes the maximum `s → t` flow, leaving the network in a residual
    /// state consistent with it (min-cut extraction works as usual).
    pub fn max_flow(&mut self, s: NodeId, t: NodeId) -> u64 {
        assert_ne!(s, t, "source and sink must differ");
        let _span = mc3_telemetry::span("push_relabel.max_flow");
        let n = self.g.num_nodes();
        self.height[s] = u32_of(n);
        for h in self.height.iter() {
            self.height_count[*h as usize] += 1;
        }

        // saturate all source arcs
        for i in 0..self.g.adj[s].len() {
            let ei = self.g.adj[s][i] as usize;
            let cap = self.g.edges[ei].cap;
            if cap > 0 {
                let to = self.g.edges[ei].to as usize;
                self.g.edges[ei].cap = 0;
                self.g.edges[ei ^ 1].cap += cap;
                self.excess[to] += cap;
                if to != t && to != s && !self.in_queue[to] {
                    self.in_queue[to] = true;
                    self.active.push_back(u32_of(to));
                }
            }
        }

        while let Some(v) = self.active.pop_front() {
            let v = v as usize;
            self.in_queue[v] = false;
            self.discharge(v, s, t);
        }
        mc3_telemetry::span_add(mc3_telemetry::Counter::PrPushes, self.pushes);
        mc3_telemetry::span_add(mc3_telemetry::Counter::PrRelabels, self.relabels);
        mc3_telemetry::span_add(mc3_telemetry::Counter::PrGapFirings, self.gap_firings);
        mc3_obs::debug(
            "flow",
            "push-relabel max-flow done",
            &[
                ("value", self.excess[t].into()),
                ("pushes", self.pushes.into()),
                ("relabels", self.relabels.into()),
                ("gap_firings", self.gap_firings.into()),
            ],
        );
        #[cfg(feature = "verify")]
        {
            let _vspan = mc3_telemetry::span("verify.max_flow");
            crate::verify::assert_max_flow(self.g, s, t, self.excess[t]);
            mc3_telemetry::span_add(mc3_telemetry::Counter::VerifyFlowChecks, 1);
        }
        self.excess[t]
    }

    fn discharge(&mut self, v: usize, s: NodeId, t: NodeId) {
        while self.excess[v] > 0 {
            let mut pushed = false;
            for i in 0..self.g.adj[v].len() {
                if self.excess[v] == 0 {
                    break;
                }
                let ei = self.g.adj[v][i] as usize;
                let cap = self.g.edges[ei].cap;
                let to = self.g.edges[ei].to as usize;
                if cap > 0 && self.height[v] == self.height[to] + 1 {
                    let delta = cap.min(self.excess[v]);
                    self.g.edges[ei].cap -= delta;
                    self.g.edges[ei ^ 1].cap += delta;
                    self.excess[v] -= delta;
                    self.excess[to] += delta;
                    if to != s && to != t && !self.in_queue[to] {
                        self.in_queue[to] = true;
                        self.active.push_back(u32_of(to));
                    }
                    self.pushes += 1;
                    pushed = true;
                }
            }
            if self.excess[v] == 0 {
                break;
            }
            if !pushed {
                // relabel v to 1 + min reachable height
                let old = self.height[v];
                let mut min_h = u32::MAX;
                for &ei in &self.g.adj[v] {
                    let e = &self.g.edges[ei as usize];
                    if e.cap > 0 {
                        min_h = min_h.min(self.height[e.to as usize]);
                    }
                }
                if min_h == u32::MAX {
                    // no residual arcs: excess is stuck (can only happen for
                    // disconnected nodes); drop it
                    break;
                }
                let new = min_h + 1;
                // gap heuristic: if v was the last node at height `old`,
                // everything strictly above `old` (below n) is unreachable
                // from t and can jump past n
                self.relabels += 1;
                self.height_count[old as usize] -= 1;
                if self.height_count[old as usize] == 0 && (old as usize) < self.g.num_nodes() {
                    self.gap_firings += 1;
                    let n = u32_of(self.g.num_nodes());
                    for h in self.height.iter_mut() {
                        if *h > old && *h < n {
                            self.height_count[*h as usize] -= 1;
                            *h = n + 1;
                            self.height_count[(n + 1) as usize] += 1;
                        }
                    }
                }
                self.height[v] = new;
                self.height_count[new as usize] += 1;
                if new as usize >= 2 * self.g.num_nodes() {
                    break; // cannot push further; excess stays at v
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dinic::Dinic;
    use mc3_core::rng::prelude::*;

    #[test]
    fn classic_network_matches_dinic() {
        let build = || {
            let mut g = FlowNetwork::new(6);
            g.add_edge(0, 1, 16);
            g.add_edge(0, 2, 13);
            g.add_edge(1, 2, 10);
            g.add_edge(2, 1, 4);
            g.add_edge(1, 3, 12);
            g.add_edge(3, 2, 9);
            g.add_edge(2, 4, 14);
            g.add_edge(4, 3, 7);
            g.add_edge(3, 5, 20);
            g.add_edge(4, 5, 4);
            g
        };
        let mut g1 = build();
        let mut g2 = build();
        assert_eq!(PushRelabel::new(&mut g1).max_flow(0, 5), 23);
        assert_eq!(Dinic::new(&mut g2).max_flow(0, 5), 23);
    }

    #[test]
    fn single_edge_and_disconnected() {
        let mut g = FlowNetwork::new(3);
        g.add_edge(0, 1, 9);
        assert_eq!(PushRelabel::new(&mut g).max_flow(0, 1), 9);
        let mut g = FlowNetwork::new(3);
        g.add_edge(0, 1, 9);
        assert_eq!(PushRelabel::new(&mut g).max_flow(0, 2), 0);
    }

    #[test]
    fn agrees_with_dinic_on_random_networks() {
        let mut rng = StdRng::seed_from_u64(0xF10);
        for round in 0..100 {
            let n = rng.gen_range(2..=12usize);
            let m = rng.gen_range(1..=30usize);
            let edges: Vec<(usize, usize, u64)> = (0..m)
                .map(|_| {
                    (
                        rng.gen_range(0..n),
                        rng.gen_range(0..n),
                        rng.gen_range(0..20u64),
                    )
                })
                .filter(|&(u, v, _)| u != v)
                .collect();
            let s = 0;
            let t = n - 1;
            let mut g1 = FlowNetwork::new(n);
            let mut g2 = FlowNetwork::new(n);
            for &(u, v, c) in &edges {
                g1.add_edge(u, v, c);
                g2.add_edge(u, v, c);
            }
            let f1 = PushRelabel::new(&mut g1).max_flow(s, t);
            let f2 = Dinic::new(&mut g2).max_flow(s, t);
            assert_eq!(f1, f2, "round {round}: {edges:?}");
            // the residual state must support min-cut extraction: the
            // capacity crossing the source side equals the flow value
            let z = crate::mincut::source_side_of_min_cut(&g1, s);
            assert!(!z[t], "sink reachable after max flow");
            let cut: u64 = edges
                .iter()
                .filter(|&&(u, v, _)| z[u] && !z[v])
                .map(|&(_, _, c)| c)
                .sum();
            assert_eq!(cut, f1, "round {round}: cut/flow mismatch");
        }
    }

    #[test]
    fn residual_supports_min_cut_extraction() {
        use crate::mincut::source_side_of_min_cut;
        let mut g = FlowNetwork::new(4);
        let ids = [
            (g.add_edge(0, 1, 3), 0usize, 1usize, 3u64),
            (g.add_edge(0, 2, 2), 0, 2, 2),
            (g.add_edge(1, 3, 2), 1, 3, 2),
            (g.add_edge(2, 3, 3), 2, 3, 3),
        ];
        let f = PushRelabel::new(&mut g).max_flow(0, 3);
        assert_eq!(f, 4);
        let z = source_side_of_min_cut(&g, 0);
        let cut: u64 = ids
            .iter()
            .filter(|&&(_, u, v, _)| z[u] && !z[v])
            .map(|&(_, _, _, c)| c)
            .sum();
        assert_eq!(cut, f);
        assert!(z[0] && !z[3]);
    }

    #[test]
    fn bipartite_wvc_shaped_network() {
        // the exact network shape Algorithm 2 builds
        let mut rng = StdRng::seed_from_u64(99);
        for _ in 0..20 {
            let nl = rng.gen_range(1..=6usize);
            let nr = rng.gen_range(1..=6usize);
            let mut g1 = FlowNetwork::new(nl + nr + 2);
            let mut g2 = FlowNetwork::new(nl + nr + 2);
            let (s, t) = (0, nl + nr + 1);
            for l in 0..nl {
                let c = rng.gen_range(1..30u64);
                g1.add_edge(s, 1 + l, c);
                g2.add_edge(s, 1 + l, c);
            }
            for r in 0..nr {
                let c = rng.gen_range(1..30u64);
                g1.add_edge(1 + nl + r, t, c);
                g2.add_edge(1 + nl + r, t, c);
            }
            for l in 0..nl {
                for r in 0..nr {
                    if rng.gen_bool(0.4) {
                        g1.add_edge(1 + l, 1 + nl + r, 1_000_000);
                        g2.add_edge(1 + l, 1 + nl + r, 1_000_000);
                    }
                }
            }
            assert_eq!(
                PushRelabel::new(&mut g1).max_flow(s, t),
                Dinic::new(&mut g2).max_flow(s, t)
            );
        }
    }
}
