#![warn(missing_docs)]

//! Flow and matching substrate for the MC³ solvers.
//!
//! Algorithm 2 of the paper solves `k ≤ 2` instances exactly by reducing to
//! Weighted Vertex Cover over a bipartite graph, which reduces in linear time
//! to Max-Flow (Theorem 2.3, \[2\]). The paper's experiments selected Dinic's
//! algorithm \[10\] as the best-performing flow solver on the resulting
//! sparse bipartite networks; this crate provides it, together with:
//!
//! * residual min-cut extraction ([`mincut`]);
//! * the bipartite WVC ⇄ Max-Flow reduction ([`wvc`]);
//! * Hopcroft–Karp maximum matching and König minimum vertex cover
//!   ([`matching`]) — the machinery behind the **Mixed** baseline of the
//!   predecessor paper \[13\], which is optimal for uniform costs.

pub mod dinic;
pub mod graph;
pub mod matching;
pub mod mincut;
pub mod push_relabel;
#[cfg(feature = "verify")]
pub mod verify;
pub mod wvc;

pub use dinic::Dinic;
pub use graph::{EdgeId, FlowNetwork, NodeId};
pub use matching::{hopcroft_karp, koenig_vertex_cover, BipartiteGraph, Matching};
pub use mincut::source_side_of_min_cut;
pub use push_relabel::PushRelabel;
pub use wvc::{
    solve_bipartite_wvc, solve_bipartite_wvc_with, BipartiteWvc, FlowAlgorithm, WvcSolution,
};
