//! Runtime certificate checks for the flow kernels (`verify` feature).
//!
//! After a max-flow run the residual network itself is a proof object:
//! per-edge flows are the residual twins' accumulated capacity, so flow
//! conservation, capacity bounds and the max-flow = min-cut equality can
//! all be re-checked from scratch in `O(V + E)`. [`assert_max_flow`] does
//! exactly that and panics (via `assert!`) on any violation — both Dinic
//! and push-relabel call it on every solve when the `verify` feature is
//! on, so a bug in either kernel trips immediately instead of surfacing
//! as a silently suboptimal classifier set.

use crate::graph::FlowNetwork;
use crate::mincut::source_side_of_min_cut;

/// Checks the three max-flow certificates on a post-run residual network:
///
/// 1. **Conservation** — at every node besides `s`/`t`, inflow = outflow.
/// 2. **Value** — net outflow of `s` (= net inflow of `t`) is `claimed`.
/// 3. **Optimality** — the cut induced by residual reachability from `s`
///    has capacity exactly `claimed`, so by weak duality no larger flow
///    exists.
///
/// Capacity constraints hold by construction (a forward edge's flow is its
/// twin's capacity, and `flow + residual` is the original capacity, both
/// unsigned), so they need no explicit check.
pub fn assert_max_flow(g: &FlowNetwork, s: usize, t: usize, claimed: u64) {
    let n = g.num_nodes();
    // net[v] = outflow − inflow, in i128 to dodge intermediate overflow.
    let mut net = vec![0i128; n];
    let mut cut_capacity: u128 = 0;
    let z = source_side_of_min_cut(g, s);

    for i in (0..g.edges.len()).step_by(2) {
        let to = g.edges[i].to as usize;
        let from = g.edges[i ^ 1].to as usize;
        // The twin accumulates exactly the routed flow (it starts at 0).
        let flow = g.edges[i ^ 1].cap;
        net[from] += flow as i128;
        net[to] -= flow as i128;
        if z[from] && !z[to] {
            // Original capacity = remaining residual + routed flow.
            cut_capacity += (g.edges[i].cap + flow) as u128;
            // A cut edge must be saturated, or the cut side would grow.
            assert_eq!(
                g.edges[i].cap, 0,
                "edge {from}->{to} crosses the min cut unsaturated"
            );
        }
    }

    for (v, &balance) in net.iter().enumerate() {
        if v == s || v == t {
            continue;
        }
        assert_eq!(balance, 0, "flow conservation violated at node {v}");
    }
    assert_eq!(
        net[s], claimed as i128,
        "source outflow != claimed max flow"
    );
    if s != t {
        assert_eq!(-net[t], claimed as i128, "sink inflow != claimed max flow");
    }
    assert!(z[s], "source must be on the source side of the cut");
    assert!(
        !z[t],
        "sink reachable in the residual network: flow not maximum"
    );
    assert_eq!(
        cut_capacity, claimed as u128,
        "cut capacity != flow value: optimality certificate failed"
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dinic::Dinic;

    #[test]
    fn accepts_a_genuine_max_flow() {
        let mut g = FlowNetwork::new(4);
        g.add_edge(0, 1, 3);
        g.add_edge(0, 2, 2);
        g.add_edge(1, 3, 2);
        g.add_edge(2, 3, 3);
        g.add_edge(1, 2, 1);
        let f = Dinic::new(&mut g).max_flow(0, 3);
        assert_eq!(f, 5);
        assert_max_flow(&g, 0, 3, f);
    }

    #[test]
    #[should_panic(expected = "claimed")]
    fn rejects_an_overstated_flow_value() {
        let mut g = FlowNetwork::new(2);
        g.add_edge(0, 1, 5);
        let f = Dinic::new(&mut g).max_flow(0, 1);
        assert_max_flow(&g, 0, 1, f + 1);
    }

    #[test]
    #[should_panic(expected = "conservation")]
    fn rejects_a_corrupted_residual_network() {
        let mut g = FlowNetwork::new(3);
        g.add_edge(0, 1, 4);
        g.add_edge(1, 2, 4);
        let f = Dinic::new(&mut g).max_flow(0, 2);
        // Tamper: pretend one mid-path edge carried less flow.
        g.edges[1].cap -= 1;
        g.edges[0].cap += 1;
        assert_max_flow(&g, 0, 2, f);
    }
}
