//! The `mc3 serve` HTTP server: request-scoped tracing feeding a
//! process-global aggregate, a scrapeable `/metrics` endpoint, and a
//! structured access log.
//!
//! # Request lifecycle
//!
//! The accept thread owns the **one** long-lived
//! [`mc3_telemetry::Session`] (keeping the telemetry gate open for the
//! server's lifetime) and hands each accepted connection to a worker.
//! Per request, the worker:
//!
//! 1. generates a request id and installs an
//!    [`mc3_obs::request_id_scope`] so every event-log line the request
//!    emits carries it,
//! 2. takes an in-flight guard on [`RequestMetrics`],
//! 3. for `/solve` (and per item of `/solve-batch`), wraps the solver
//!    call in a [`mc3_telemetry::ScopedSession`] — the request's span
//!    tree diverts into a thread-local buffer instead of the global
//!    finished list — and [`absorb`](mc3_telemetry::Aggregator::absorb)s
//!    the finished tree into the global [`Aggregator`]. The solve itself
//!    runs `parallel(true)` on the shared [`mc3_solver::executor`];
//!    executor workers capture and discard their own span roots per
//!    task, so no cross-request telemetry bleeds into this request's
//!    tree,
//! 4. records route/status/latency into [`RequestMetrics`] and emits one
//!    [`mc3_obs::access`] event.
//!
//! `/metrics` therefore serves five concatenated sections: the solver
//! registry rendered from the aggregator's cumulative report
//! ([`mc3_obs::prometheus_text`]), the constant
//! [`mc3_obs::build_info_text`] gauge, the live request-plane
//! families ([`RequestMetrics::render`]), the cache occupancy
//! families ([`cache_metrics_text`]), and the live executor families
//! ([`exec_metrics_text`]).
//!
//! # Caching
//!
//! Unless `--no-cache` is set, `/solve` consults two memo layers:
//!
//! 1. an **exact-body request cache** — a byte-bounded LRU keyed by a
//!    stable hash of the raw body plus the algorithm selector; a hit
//!    replays the full 200 response with `request_id` re-stamped;
//! 2. the **cross-request component cache** ([`mc3_solver::SolveCache`],
//!    shared by every worker via [`Mc3Solver::cache`]) — bodies that
//!    differ textually but contain isomorphic components still hit,
//!    keyed by `mc3-core::canon` canonical fingerprints.

use crate::http::{encode_response, read_request, Request};
use crate::pool::ThreadPool;
use crate::ServerConfig;
use mc3_core::json::Json;
use mc3_core::{FxHashMap, StableHasher};
use mc3_obs::{RequestMetrics, Route};
use mc3_solver::{executor, Algorithm, Mc3Solver, SolveCache};
use mc3_telemetry::Aggregator;
use std::collections::BTreeMap;
use std::io::{BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// How long a keep-alive connection may sit idle before the worker
/// reclaims itself.
const IDLE_TIMEOUT: Duration = Duration::from_secs(10);

/// Fixed per-entry overhead charged by the request cache on top of the
/// rendered body: key, LRU slot, map slot, `Json` tree bookkeeping.
const REQUEST_ENTRY_OVERHEAD: usize = 160;

/// Exact-body response memo for `POST /solve`: keyed by a stable hash of
/// the raw request body plus the algorithm selector, holding the full
/// 200-response document. A hit clones the document and re-stamps
/// `request_id`, so every response stays uniquely attributable.
struct RequestCache {
    map: FxHashMap<u128, RequestEntry>,
    lru: BTreeMap<u64, u128>,
    bytes: usize,
    budget: usize,
    tick: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
}

struct RequestEntry {
    doc: Json,
    bytes: usize,
    tick: u64,
}

/// Snapshot of the request-cache counters, rendered into `/metrics`.
struct RequestCacheStats {
    hits: u64,
    misses: u64,
    evictions: u64,
    entries: usize,
    bytes: usize,
}

impl RequestCache {
    fn new(budget: usize) -> RequestCache {
        RequestCache {
            map: FxHashMap::default(),
            lru: BTreeMap::new(),
            bytes: 0,
            budget,
            tick: 0,
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    fn lookup(&mut self, key: u128) -> Option<Json> {
        self.tick += 1;
        let tick = self.tick;
        match self.map.get_mut(&key) {
            Some(entry) => {
                self.lru.remove(&entry.tick);
                entry.tick = tick;
                self.lru.insert(tick, key);
                self.hits += 1;
                Some(entry.doc.clone())
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    fn insert(&mut self, key: u128, doc: Json, body_len: usize) {
        let bytes = body_len + REQUEST_ENTRY_OVERHEAD;
        if bytes > self.budget {
            return; // never evict the whole cache for one giant response
        }
        if let Some(old) = self.map.remove(&key) {
            self.lru.remove(&old.tick);
            self.bytes -= old.bytes;
        }
        while self.bytes + bytes > self.budget {
            let Some((&oldest, &victim)) = self.lru.iter().next() else {
                break;
            };
            self.lru.remove(&oldest);
            if let Some(evicted) = self.map.remove(&victim) {
                self.bytes -= evicted.bytes;
                self.evictions += 1;
            }
        }
        self.tick += 1;
        self.lru.insert(self.tick, key);
        self.map.insert(
            key,
            RequestEntry {
                doc,
                bytes,
                tick: self.tick,
            },
        );
        self.bytes += bytes;
    }

    fn stats(&self) -> RequestCacheStats {
        RequestCacheStats {
            hits: self.hits,
            misses: self.misses,
            evictions: self.evictions,
            entries: self.map.len(),
            bytes: self.bytes,
        }
    }
}

/// Stable exact-body key: length-prefixed body bytes, then the algorithm
/// selector, through the same seedless hasher the solve cache uses.
fn body_key(body: &[u8], algorithm: &str) -> u128 {
    let mut h = StableHasher::new();
    for bytes in [body, algorithm.as_bytes()] {
        h.write_u64(bytes.len() as u64);
        for chunk in bytes.chunks(8) {
            let mut w = [0u8; 8];
            w[..chunk.len()].copy_from_slice(chunk);
            h.write_u64(u64::from_le_bytes(w));
        }
    }
    h.finish128()
}

/// Shared server state: the metric families `/metrics` serves.
pub struct ServerState {
    /// Request-plane families (counters, in-flight gauge, latency
    /// histograms).
    pub metrics: RequestMetrics,
    /// Cumulative per-span solver telemetry across all requests.
    pub aggregator: Aggregator,
    request_seq: AtomicU64,
    nonce: u64,
    solve_cache: Option<Arc<SolveCache>>,
    request_cache: Option<Mutex<RequestCache>>,
    requests_dropped: AtomicU64,
}

impl ServerState {
    fn new(cfg: &ServerConfig) -> ServerState {
        let caching = !cfg.no_cache && cfg.cache_mb > 0;
        ServerState {
            metrics: RequestMetrics::new(),
            aggregator: Aggregator::new(),
            request_seq: AtomicU64::new(0),
            nonce: mc3_telemetry::monotonic_ns(),
            solve_cache: caching.then(|| Arc::new(SolveCache::with_capacity_mb(cfg.cache_mb))),
            request_cache: caching
                .then(|| Mutex::new(RequestCache::new(cfg.cache_mb * (1 << 20) / 4))),
            requests_dropped: AtomicU64::new(0),
        }
    }

    /// The cross-request component solve cache, when enabled.
    pub fn solve_cache(&self) -> Option<&Arc<SolveCache>> {
        self.solve_cache.as_ref()
    }

    /// Connections the accept loop had to answer 503 for because the
    /// worker pool rejected them (shutdown in progress).
    pub fn requests_dropped(&self) -> u64 {
        // audit:allow(no-relaxed-atomics) reviewed: monotonic diagnostic counter
        self.requests_dropped.load(Ordering::Relaxed)
    }

    fn next_request_id(&self) -> String {
        // audit:allow(no-relaxed-atomics) reviewed: unique-id ticket counter — only atomicity matters, not ordering
        let seq = self.request_seq.fetch_add(1, Ordering::Relaxed);
        format!("{:08x}-{seq:08x}", self.nonce & 0xffff_ffff)
    }
}

/// A running server; dropping it does **not** stop the accept loop —
/// call [`Server::shutdown`] (tests) or [`Server::join`] (the CLI, which
/// blocks until a fatal accept-loop error).
pub struct Server {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept: Option<JoinHandle<Result<(), String>>>,
    state: Arc<ServerState>,
}

impl Server {
    /// Binds the listener and spawns the accept loop. Binding first means
    /// the caller always learns the real address — `--addr 127.0.0.1:0`
    /// works and tests never race the server's startup.
    pub fn start(cfg: &ServerConfig) -> Result<Server, String> {
        let listener =
            TcpListener::bind(&cfg.addr).map_err(|e| format!("cannot bind {}: {e}", cfg.addr))?;
        let addr = listener
            .local_addr()
            .map_err(|e| format!("cannot read bound address: {e}"))?;
        let workers = if cfg.workers == 0 {
            // Each live connection parks on a worker, so the floor must
            // cover the loadgen default of 8 concurrent connections.
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(8)
                .max(8)
        } else {
            cfg.workers
        };
        // Size the shared solve executor before any request can touch it:
        // the pool is process-wide and fixed after first use, and every
        // /solve and /solve-batch runs its component tasks on it.
        if cfg.solve_threads > 0 {
            executor::configure_threads(cfg.solve_threads);
        }
        let state = Arc::new(ServerState::new(cfg));
        let stop = Arc::new(AtomicBool::new(false));
        let accept = {
            let state = Arc::clone(&state);
            let stop = Arc::clone(&stop);
            std::thread::Builder::new()
                .name("mc3-serve-accept".to_owned())
                .spawn(move || accept_loop(&listener, workers, &state, &stop))
                .map_err(|e| format!("cannot spawn accept thread: {e}"))?
        };
        mc3_obs::info(
            "server",
            "listening",
            &[
                ("addr", mc3_obs::Value::Str(addr.to_string())),
                ("workers", mc3_obs::Value::U64(workers as u64)),
                (
                    "solve_threads",
                    mc3_obs::Value::U64(executor::effective_threads() as u64),
                ),
                (
                    "cache_mb",
                    mc3_obs::Value::U64(if state.solve_cache.is_some() {
                        cfg.cache_mb as u64
                    } else {
                        0
                    }),
                ),
            ],
        );
        Ok(Server {
            addr,
            stop,
            accept: Some(accept),
            state,
        })
    }

    /// The bound address.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared metric state (exposed for tests).
    pub fn state(&self) -> &ServerState {
        &self.state
    }

    /// Blocks until the accept loop exits — which it never does except on
    /// a fatal listener error or [`Server::shutdown`] from another thread.
    pub fn join(mut self) -> Result<String, String> {
        match self.accept.take() {
            Some(handle) => match handle.join() {
                Ok(Ok(())) => Ok("server stopped\n".to_owned()),
                Ok(Err(e)) => Err(e),
                Err(_) => Err("accept thread panicked".to_owned()),
            },
            None => Ok(String::new()),
        }
    }

    /// Stops the accept loop and joins it (workers drain first).
    pub fn shutdown(mut self) -> Result<(), String> {
        // audit:allow(no-relaxed-atomics) reviewed: SeqCst — the stop flag must be visible to the accept loop before the wake-up connection below
        self.stop.store(true, Ordering::SeqCst);
        // Wake the blocking accept() with a throwaway connection; a
        // failure means the accept loop is already gone, which is fine.
        // audit:allow(no-swallowed-result) reviewed: best-effort wake-up, both outcomes converge on the join below
        let _ = TcpStream::connect(self.addr);
        match self.accept.take() {
            Some(handle) => match handle.join() {
                Ok(r) => r,
                Err(_) => Err("accept thread panicked".to_owned()),
            },
            None => Ok(()),
        }
    }
}

fn accept_loop(
    listener: &TcpListener,
    workers: usize,
    state: &Arc<ServerState>,
    stop: &Arc<AtomicBool>,
) -> Result<(), String> {
    let pool = match ThreadPool::new(workers) {
        Ok(pool) => pool,
        Err(e) => return Err(format!("cannot spawn server workers: {e}")),
    };
    // The server-lifetime telemetry session: opens the recording gate so
    // worker-thread ScopedSessions capture real span trees. Finished (and
    // discarded) only when the accept loop ends.
    let session = mc3_telemetry::Session::begin();
    let result = loop {
        let conn = listener.accept();
        // audit:allow(no-relaxed-atomics) reviewed: SeqCst pairs with the store in shutdown(); the wake-up connection happens-after it
        if stop.load(Ordering::SeqCst) {
            break Ok(());
        }
        match conn {
            Ok((stream, _)) => {
                // Keep a write handle so a rejected connection gets an
                // explicit 503 instead of hanging until its client times
                // out; the pool only rejects while shutting down.
                let reject_writer = stream.try_clone();
                let conn_state = Arc::clone(state);
                let accepted = pool.execute(move || serve_connection(stream, &conn_state));
                if !accepted {
                    // audit:allow(no-relaxed-atomics) reviewed: monotonic diagnostic counter
                    state.requests_dropped.fetch_add(1, Ordering::Relaxed);
                    state.metrics.observe(Route::Other, 503, 0);
                    mc3_obs::warn(
                        "server",
                        "connection rejected: worker pool unavailable",
                        &[],
                    );
                    if let Ok(mut w) = reject_writer {
                        let wire = encode_response(
                            503,
                            "application/json",
                            b"{\"error\":\"server is shutting down\"}\n",
                        );
                        // audit:allow(no-swallowed-result) reviewed: best-effort courtesy response on a doomed connection
                        let _ = w.write_all(&wire).and_then(|()| w.flush());
                    }
                }
            }
            Err(e) => break Err(format!("accept failed: {e}")),
        }
    };
    drop(pool); // join workers before closing the telemetry session
                // The session-level report is deliberately unused: per-request trees
                // already live in the aggregator, which is what /metrics serves.
    session.finish();
    result
}

fn serve_connection(stream: TcpStream, state: &ServerState) {
    // Without the read timeout an idle client would pin its worker
    // forever, so a socket that cannot take one is not worth serving.
    if stream.set_read_timeout(Some(IDLE_TIMEOUT)).is_err() {
        return;
    }
    if stream.set_nodelay(true).is_err() {
        mc3_obs::debug("server", "set_nodelay failed; serving anyway", &[]);
    }
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    loop {
        let req = match read_request(&mut reader) {
            Ok(Some(req)) => req,
            Ok(None) => return, // clean close between requests
            Err(_) => return,   // idle timeout or malformed framing
        };
        let close = req.wants_close();
        let start = mc3_telemetry::monotonic_ns();
        let request_id = state.next_request_id();
        let _rid = mc3_obs::request_id_scope(&request_id);
        let _inflight = state.metrics.inflight_guard();
        let (route, response) = dispatch(state, &req, &request_id);
        let wire = encode_response(response.status, response.content_type, &response.body);
        // Observe BEFORE writing: a client that has read its response and
        // then scrapes /metrics must already see this request counted.
        let latency_ns = mc3_telemetry::monotonic_ns().saturating_sub(start);
        state.metrics.observe(route, response.status, latency_ns);
        mc3_obs::access(
            &req.method,
            route.as_str(),
            response.status,
            latency_ns,
            wire.len() as u64,
        );
        let written = writer.write_all(&wire).and_then(|()| writer.flush());
        if close || written.is_err() {
            return;
        }
    }
}

struct HandlerResponse {
    status: u16,
    content_type: &'static str,
    body: Vec<u8>,
}

fn json_response(status: u16, doc: &Json) -> HandlerResponse {
    let mut body = doc.to_string_pretty().into_bytes();
    body.push(b'\n');
    HandlerResponse {
        status,
        content_type: "application/json",
        body,
    }
}

fn error_response(status: u16, msg: &str) -> HandlerResponse {
    json_response(
        status,
        &Json::object([("error", Json::Str(msg.to_owned()))]),
    )
}

fn dispatch(state: &ServerState, req: &Request, request_id: &str) -> (Route, HandlerResponse) {
    match (req.method.as_str(), req.path()) {
        ("POST", "/solve") => (Route::Solve, handle_solve(state, req, request_id)),
        ("POST", "/solve-batch") => (
            Route::SolveBatch,
            handle_solve_batch(state, req, request_id),
        ),
        ("GET", "/metrics") => (Route::Metrics, handle_metrics(state)),
        ("GET", "/healthz") => (
            Route::Healthz,
            HandlerResponse {
                status: 200,
                content_type: "text/plain; charset=utf-8",
                body: b"ok\n".to_vec(),
            },
        ),
        ("GET", "/buildinfo") => (Route::Buildinfo, handle_buildinfo()),
        ("GET" | "POST", "/solve" | "/solve-batch" | "/metrics" | "/healthz" | "/buildinfo") => (
            route_of(req.path()),
            error_response(405, "method not allowed for this route"),
        ),
        _ => (Route::Other, error_response(404, "no such route")),
    }
}

fn route_of(path: &str) -> Route {
    match path {
        "/solve" => Route::Solve,
        "/solve-batch" => Route::SolveBatch,
        "/metrics" => Route::Metrics,
        "/healthz" => Route::Healthz,
        "/buildinfo" => Route::Buildinfo,
        _ => Route::Other,
    }
}

/// Version/revision pair stamped into `/buildinfo` and `mc3_build_info`.
fn build_ids() -> (&'static str, &'static str) {
    (
        env!("CARGO_PKG_VERSION"),
        option_env!("MC3_GIT_SHA").unwrap_or("unknown"),
    )
}

fn handle_buildinfo() -> HandlerResponse {
    let (version, git) = build_ids();
    json_response(
        200,
        &Json::object([
            ("name", Json::Str("mc3".to_owned())),
            ("version", Json::Str(version.to_owned())),
            ("git", Json::Str(git.to_owned())),
            (
                "report_version",
                Json::Int(i128::from(mc3_telemetry::REPORT_VERSION)),
            ),
        ]),
    )
}

/// Live gauge/counter families for the two caches. The cumulative
/// `mc3_cache_hits_total` / `mc3_cache_misses_total` /
/// `mc3_cache_evictions_total` counters already arrive through the
/// telemetry registry ([`mc3_obs::prometheus_text`]); this adds the
/// instantaneous occupancy families the registry cannot carry, plus the
/// request-cache plane.
fn cache_metrics_text(state: &ServerState) -> String {
    let mut out = String::new();
    if let Some(cache) = &state.solve_cache {
        let s = cache.stats();
        out.push_str("# TYPE mc3_cache_resident_bytes gauge\n");
        out.push_str(&format!("mc3_cache_resident_bytes {}\n", s.resident_bytes));
        out.push_str("# TYPE mc3_cache_capacity_bytes gauge\n");
        out.push_str(&format!("mc3_cache_capacity_bytes {}\n", s.capacity_bytes));
        out.push_str("# TYPE mc3_cache_entries gauge\n");
        out.push_str(&format!("mc3_cache_entries {}\n", s.entries));
    }
    if let Some(cache) = &state.request_cache {
        if let Ok(cache) = cache.lock() {
            let s = cache.stats();
            out.push_str("# TYPE mc3_request_cache_hits_total counter\n");
            out.push_str(&format!("mc3_request_cache_hits_total {}\n", s.hits));
            out.push_str("# TYPE mc3_request_cache_misses_total counter\n");
            out.push_str(&format!("mc3_request_cache_misses_total {}\n", s.misses));
            out.push_str("# TYPE mc3_request_cache_evictions_total counter\n");
            out.push_str(&format!(
                "mc3_request_cache_evictions_total {}\n",
                s.evictions
            ));
            out.push_str("# TYPE mc3_request_cache_entries gauge\n");
            out.push_str(&format!("mc3_request_cache_entries {}\n", s.entries));
            out.push_str("# TYPE mc3_request_cache_resident_bytes gauge\n");
            out.push_str(&format!("mc3_request_cache_resident_bytes {}\n", s.bytes));
        }
    }
    out
}

/// Live executor families: pool size and queue depth gauges plus the
/// always-on spawn counter (steady state after warmup must read a stable
/// value — new spawns under load mean the shared pool is not actually
/// shared), and the accept-loop drop counter. The cumulative
/// `mc3_exec_tasks_total` / `mc3_exec_steals_total` /
/// `mc3_exec_park_ns_total` counters and the `mc3_exec_wait_ns`
/// histogram arrive through the telemetry registry.
fn exec_metrics_text(state: &ServerState) -> String {
    let mut out = String::new();
    out.push_str("# TYPE mc3_exec_threads gauge\n");
    out.push_str(&format!("mc3_exec_threads {}\n", executor::pool_threads()));
    out.push_str("# TYPE mc3_exec_queue_depth gauge\n");
    out.push_str(&format!(
        "mc3_exec_queue_depth {}\n",
        executor::queue_depth()
    ));
    out.push_str("# TYPE mc3_exec_thread_spawns_total counter\n");
    out.push_str(&format!(
        "mc3_exec_thread_spawns_total {}\n",
        executor::thread_spawns_total()
    ));
    out.push_str("# TYPE mc3_requests_dropped_total counter\n");
    out.push_str(&format!(
        "mc3_requests_dropped_total {}\n",
        state.requests_dropped()
    ));
    out
}

fn handle_metrics(state: &ServerState) -> HandlerResponse {
    let (version, git) = build_ids();
    let mut body = mc3_obs::prometheus_text(&state.aggregator.report());
    body.push_str(&mc3_obs::build_info_text(version, Some(git)));
    body.push_str(&state.metrics.render());
    body.push_str(&cache_metrics_text(state));
    body.push_str(&exec_metrics_text(state));
    HandlerResponse {
        status: 200,
        content_type: "text/plain; version=0.0.4",
        body: body.into_bytes(),
    }
}

fn handle_solve(state: &ServerState, req: &Request, request_id: &str) -> HandlerResponse {
    let algorithm = match req.query_param("algorithm") {
        Some(name) => match Algorithm::parse_name(name) {
            Ok(a) => a,
            Err(e) => return error_response(400, &e),
        },
        None => Algorithm::Auto,
    };
    // Exact-body fast path: an identical (body, algorithm) pair replays
    // the memoized response, re-stamped with this request's id.
    let key = state
        .request_cache
        .as_ref()
        .map(|_| body_key(req.body.as_slice(), algorithm.name()));
    if let (Some(cache), Some(key)) = (state.request_cache.as_ref(), key) {
        let cached = match cache.lock() {
            Ok(mut cache) => cache.lookup(key),
            Err(_) => None, // poisoned lock: serve uncached, never fail the request
        };
        if let Some(mut doc) = cached {
            if let Json::Object(map) = &mut doc {
                map.insert("request_id".to_owned(), Json::Str(request_id.to_owned()));
            }
            return json_response(200, &doc);
        }
    }

    let ds = match mc3_workload::read_dataset_json(req.body.as_slice()) {
        Ok(ds) => ds,
        Err(e) => return error_response(400, &format!("bad dataset: {e}")),
    };

    let fields = match solve_doc(state, &ds, algorithm) {
        Ok(fields) => fields,
        Err((status, msg)) => return error_response(status, &msg),
    };
    let doc = Json::object(
        std::iter::once(("request_id", Json::Str(request_id.to_owned()))).chain(fields),
    );
    let response = json_response(200, &doc);
    if let (Some(cache), Some(key)) = (state.request_cache.as_ref(), key) {
        if let Ok(mut cache) = cache.lock() {
            cache.insert(key, doc, response.body.len());
        }
    }
    response
}

/// Solves one dataset and renders the shared response fields (everything
/// except `request_id`/`status`, which the callers add). `Err` carries
/// the HTTP status and message.
///
/// Request-scoped tracing: the solve's span tree is captured on this
/// worker thread and merged into the global aggregate. The solve runs
/// `parallel(true)` on the shared executor — safe for the per-request
/// scope because executor workers capture and discard their own span
/// roots per task, so only this thread's `solve` tree lands here.
fn solve_doc(
    state: &ServerState,
    ds: &mc3_workload::Dataset,
    algorithm: Algorithm,
) -> Result<Vec<(&'static str, Json)>, (u16, String)> {
    let scope = mc3_telemetry::ScopedSession::begin();
    let mut solver = Mc3Solver::new().algorithm(algorithm).parallel(true);
    if let Some(cache) = &state.solve_cache {
        solver = solver.cache(Arc::clone(cache));
    }
    let solved = solver.solve_report(&ds.instance);
    let roots = scope.finish();
    state.aggregator.absorb(&roots);

    let report = solved.map_err(|e| (422, format!("solve failed: {e}")))?;
    let cert = mc3_core::Certificate::for_solution(&ds.instance, &report.solution)
        .map_err(|e| (500, format!("certificate construction failed: {e}")))?;
    cert.verify(&ds.instance, &report.solution)
        .map_err(|e| (500, format!("certificate verification failed: {e}")))?;

    let classifiers = Json::array(
        report
            .solution
            .classifiers()
            .iter()
            .map(|c| Json::array(c.iter().map(|p| Json::Int(i128::from(p.0))))),
    );
    let ns = |d: std::time::Duration| Json::Int(d.as_nanos().min(u128::from(u64::MAX)) as i128);
    Ok(vec![
        ("dataset", Json::Str(ds.name.clone())),
        ("queries", Json::Int(ds.instance.num_queries() as i128)),
        ("algorithm", Json::Str(algorithm.name().to_owned())),
        ("cost", Json::Int(i128::from(report.solution.cost().raw()))),
        ("classifiers", classifiers),
        ("components", Json::Int(report.components as i128)),
        (
            "wall_ns",
            Json::object([
                ("setup", ns(report.timings.setup)),
                ("preprocess", ns(report.timings.preprocess)),
                ("solve", ns(report.timings.solve)),
                ("total", ns(report.timings.total)),
            ]),
        ),
        (
            "certificate",
            Json::object([
                ("valid", Json::Bool(true)),
                ("optimal", Json::Bool(cert.proves_optimality())),
            ]),
        ),
    ])
}

/// `POST /solve-batch`: a JSON array of dataset documents in one body,
/// one parse pass, one response. Items are solved as consecutive task
/// groups on the shared executor (each item's component tasks fan out
/// across the pool) and are fully independent: a bad or infeasible item
/// reports its own `status`/`error` without failing its siblings, and
/// every item gets its own verified certificate. Isomorphic items hit
/// the shared component cache, so duplicate-heavy batches amortize both
/// parsing and solving.
fn handle_solve_batch(state: &ServerState, req: &Request, request_id: &str) -> HandlerResponse {
    let algorithm = match req.query_param("algorithm") {
        Some(name) => match Algorithm::parse_name(name) {
            Ok(a) => a,
            Err(e) => return error_response(400, &e),
        },
        None => Algorithm::Auto,
    };
    let body = match std::str::from_utf8(&req.body) {
        Ok(s) => s,
        Err(_) => return error_response(400, "batch body must be UTF-8 JSON"),
    };
    let parsed = match mc3_core::json::parse(body) {
        Ok(doc) => doc,
        Err(e) => return error_response(400, &format!("bad batch body: {e}")),
    };
    let Json::Array(items) = parsed else {
        return error_response(400, "batch body must be a JSON array of datasets");
    };
    if items.is_empty() {
        return error_response(400, "empty batch");
    }

    let mut ok = 0usize;
    let mut out = Vec::with_capacity(items.len());
    for item in &items {
        let ds = mc3_workload::DatasetFile::from_json(item)
            .and_then(|f| f.into_dataset().map_err(|e| e.to_string()));
        let item_doc = match ds {
            Ok(ds) => match solve_doc(state, &ds, algorithm) {
                Ok(fields) => {
                    ok += 1;
                    Json::object(std::iter::once(("status", Json::Int(200))).chain(fields))
                }
                Err((status, msg)) => Json::object([
                    ("status", Json::Int(i128::from(status))),
                    ("error", Json::Str(msg)),
                ]),
            },
            Err(e) => Json::object([
                ("status", Json::Int(400)),
                ("error", Json::Str(format!("bad dataset: {e}"))),
            ]),
        };
        out.push(item_doc);
    }
    let doc = Json::object([
        ("request_id", Json::Str(request_id.to_owned())),
        ("algorithm", Json::Str(algorithm.name().to_owned())),
        ("count", Json::Int(items.len() as i128)),
        ("ok", Json::Int(ok as i128)),
        ("items", Json::Array(out)),
    ]);
    json_response(200, &doc)
}
