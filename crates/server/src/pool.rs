//! A fixed-size worker pool over `std::sync::mpsc` — one long-lived
//! thread per worker, jobs dispatched through a shared channel. Dropping
//! the pool closes the channel and joins every worker, so server
//! shutdown is deterministic.

use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// The worker pool.
pub struct ThreadPool {
    tx: Option<Sender<Job>>,
    workers: Vec<JoinHandle<()>>,
}

impl ThreadPool {
    /// Spawns `n` workers (`n` is clamped to at least 1). Fails only when
    /// the OS refuses to spawn a thread.
    pub fn new(n: usize) -> std::io::Result<ThreadPool> {
        let n = n.max(1);
        let (tx, rx) = channel::<Job>();
        let rx = Arc::new(Mutex::new(rx));
        let workers = (0..n)
            .map(|i| {
                let rx = Arc::clone(&rx);
                std::thread::Builder::new()
                    .name(format!("mc3-serve-{i}"))
                    .spawn(move || worker_loop(&rx))
            })
            .collect::<std::io::Result<Vec<_>>>()?;
        Ok(ThreadPool {
            tx: Some(tx),
            workers,
        })
    }

    /// Enqueues a job; it runs on the first free worker. Returns whether
    /// the job was accepted — `false` means the pool is shutting down and
    /// the job was **not** run, so the caller must fail the work it
    /// represents explicitly (the accept loop answers 503) instead of
    /// leaving its client hanging on a silently dropped connection.
    #[must_use]
    pub fn execute(&self, job: impl FnOnce() + Send + 'static) -> bool {
        match &self.tx {
            Some(tx) => {
                let accepted = tx.send(Box::new(job)).is_ok();
                if !accepted {
                    mc3_obs::debug("server.pool", "job rejected: pool is shutting down", &[]);
                }
                accepted
            }
            None => false,
        }
    }
}

fn worker_loop(rx: &Mutex<Receiver<Job>>) {
    loop {
        let job = {
            let held = rx.lock().unwrap_or_else(|p| p.into_inner());
            held.recv()
        };
        match job {
            // A panicking job must not take the worker down with it — a
            // server that loses a worker per bad request starves itself.
            // The connection is dropped during unwind, so the client sees
            // a clean close rather than a hang.
            Ok(job) => {
                if std::panic::catch_unwind(std::panic::AssertUnwindSafe(job)).is_err() {
                    mc3_obs::warn(
                        "server.pool",
                        "request handler panicked; its connection was dropped",
                        &[],
                    );
                }
            }
            Err(_) => break, // channel closed: pool is shutting down
        }
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        drop(self.tx.take()); // closes the channel; workers drain and exit
        for handle in self.workers.drain(..) {
            // Jobs run under catch_unwind, so a worker can only die to an
            // abort-on-panic build; still, never let one lost thread stop
            // the drain that joins the rest.
            if handle.join().is_err() {
                mc3_obs::error("server.pool", "worker thread panicked", &[]);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn runs_all_jobs_and_joins_on_drop() {
        let done = Arc::new(AtomicUsize::new(0));
        {
            let pool = ThreadPool::new(3).expect("spawn pool");
            for _ in 0..32 {
                let done = Arc::clone(&done);
                let accepted = pool.execute(move || {
                    done.fetch_add(1, Ordering::SeqCst);
                });
                assert!(accepted, "live pool must accept jobs");
            }
        } // drop joins: every job must have run by now
        assert_eq!(done.load(Ordering::SeqCst), 32);
    }

    #[test]
    fn zero_workers_clamps_to_one() {
        let done = Arc::new(AtomicUsize::new(0));
        {
            let pool = ThreadPool::new(0).expect("spawn pool");
            let d = Arc::clone(&done);
            assert!(pool.execute(move || {
                d.fetch_add(1, Ordering::SeqCst);
            }));
        }
        assert_eq!(done.load(Ordering::SeqCst), 1);
    }
}
