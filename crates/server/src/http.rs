//! A deliberately small HTTP/1.1 subset over `std::io` streams — just
//! enough for the serving plane and its load generator to talk to each
//! other (and for `curl`/Prometheus to talk to the server): request line
//! + headers + `Content-Length` bodies, keep-alive by default, no
//! chunked transfer, no TLS.

use std::io::{BufRead, Write};

/// Upper bound on one header section, bytes. A client that sends more is
/// told 431 by the caller; here it is an error.
const MAX_HEADER_BYTES: usize = 16 * 1024;
/// Upper bound on a request/response body we are willing to buffer.
const MAX_BODY_BYTES: usize = 16 * 1024 * 1024;

/// A parsed HTTP/1.1 request (server side) — method, target, headers and
/// a fully buffered body.
#[derive(Debug, Clone)]
pub struct Request {
    /// `GET`, `POST`, ... (uppercased by the peer, not by us).
    pub method: String,
    /// The raw request target, e.g. `/solve?algorithm=general`.
    pub target: String,
    /// Header `(name, value)` pairs; names lowercased.
    pub headers: Vec<(String, String)>,
    /// The request body (empty without `Content-Length`).
    pub body: Vec<u8>,
}

impl Request {
    /// The target's path component.
    pub fn path(&self) -> &str {
        match self.target.split_once('?') {
            Some((p, _)) => p,
            None => &self.target,
        }
    }

    /// The target's raw query string, if any.
    pub fn query(&self) -> Option<&str> {
        self.target.split_once('?').map(|(_, q)| q)
    }

    /// The first value of query parameter `key` (`k=v` pairs joined by
    /// `&`; no percent-decoding — the serving API's values never need it).
    pub fn query_param(&self, key: &str) -> Option<&str> {
        self.query()?
            .split('&')
            .filter_map(|kv| kv.split_once('='))
            .find(|(k, _)| *k == key)
            .map(|(_, v)| v)
    }

    /// The value of header `name` (ASCII case-insensitive).
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// Whether the client asked to close the connection after this
    /// request.
    pub fn wants_close(&self) -> bool {
        self.header("connection")
            .is_some_and(|v| v.eq_ignore_ascii_case("close"))
    }
}

fn invalid(msg: impl Into<String>) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, msg.into())
}

/// Reads one line (without CRLF), enforcing the running header budget.
fn read_line(r: &mut impl BufRead, budget: &mut usize) -> std::io::Result<String> {
    let mut line = String::new();
    let n = r.read_line(&mut line)?;
    if n == 0 {
        return Err(std::io::Error::new(
            std::io::ErrorKind::UnexpectedEof,
            "connection closed mid-message",
        ));
    }
    *budget = budget
        .checked_sub(n)
        .ok_or_else(|| invalid("header section exceeds 16 KiB"))?;
    while line.ends_with('\n') || line.ends_with('\r') {
        line.pop();
    }
    Ok(line)
}

/// Reads the header block shared by requests and responses, returning the
/// `(name, value)` pairs (names lowercased) and the parsed
/// `Content-Length` (0 when absent).
fn read_headers(
    r: &mut impl BufRead,
    budget: &mut usize,
) -> std::io::Result<(Vec<(String, String)>, usize)> {
    let mut headers = Vec::new();
    let mut content_length = 0usize;
    loop {
        let line = read_line(r, budget)?;
        if line.is_empty() {
            break;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| invalid(format!("malformed header line '{line}'")))?;
        let name = name.trim().to_ascii_lowercase();
        let value = value.trim().to_owned();
        if name == "content-length" {
            content_length = value
                .parse()
                .map_err(|_| invalid(format!("bad content-length '{value}'")))?;
            if content_length > MAX_BODY_BYTES {
                return Err(invalid("body exceeds 16 MiB"));
            }
        }
        headers.push((name, value));
    }
    Ok((headers, content_length))
}

fn read_body(r: &mut impl BufRead, len: usize) -> std::io::Result<Vec<u8>> {
    let mut body = vec![0u8; len];
    r.read_exact(&mut body)?;
    Ok(body)
}

/// Reads one request off a keep-alive connection. `Ok(None)` means the
/// peer closed the connection cleanly between requests.
pub fn read_request(r: &mut impl BufRead) -> std::io::Result<Option<Request>> {
    let mut first = String::new();
    if r.read_line(&mut first)? == 0 {
        return Ok(None);
    }
    let mut budget = MAX_HEADER_BYTES.saturating_sub(first.len());
    while first.ends_with('\n') || first.ends_with('\r') {
        first.pop();
    }
    let mut parts = first.split_ascii_whitespace();
    let (method, target, version) = match (parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v)) => (m.to_owned(), t.to_owned(), v),
        _ => return Err(invalid(format!("malformed request line '{first}'"))),
    };
    if !version.starts_with("HTTP/1.") {
        return Err(invalid(format!("unsupported protocol '{version}'")));
    }
    let (headers, content_length) = read_headers(r, &mut budget)?;
    let body = read_body(r, content_length)?;
    Ok(Some(Request {
        method,
        target,
        headers,
        body,
    }))
}

/// The canonical reason phrase for the handful of statuses we emit.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        422 => "Unprocessable Entity",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Serializes one response (status line + headers + body) to wire bytes.
/// Encoding is split from writing so the server can record a request's
/// metrics *before* the client can observe the response — a client that
/// completes a request and then scrapes `/metrics` is guaranteed to see
/// itself counted.
pub fn encode_response(status: u16, content_type: &str, body: &[u8]) -> Vec<u8> {
    let head = format!(
        "HTTP/1.1 {} {}\r\ncontent-type: {}\r\ncontent-length: {}\r\n\r\n",
        status,
        reason(status),
        content_type,
        body.len()
    );
    let mut wire = head.into_bytes();
    wire.extend_from_slice(body);
    wire
}

/// Writes one response with a buffered body; returns the total bytes
/// written (header + body), which feeds the access log.
pub fn write_response(
    w: &mut impl Write,
    status: u16,
    content_type: &str,
    body: &[u8],
) -> std::io::Result<u64> {
    let wire = encode_response(status, content_type, body);
    w.write_all(&wire)?;
    w.flush()?;
    Ok(wire.len() as u64)
}

/// Writes one client-side request (keep-alive).
pub fn write_request(
    w: &mut impl Write,
    method: &str,
    target: &str,
    body: Option<&[u8]>,
) -> std::io::Result<()> {
    let body = body.unwrap_or(&[]);
    let head = format!(
        "{method} {target} HTTP/1.1\r\nhost: mc3\r\ncontent-length: {}\r\n\r\n",
        body.len()
    );
    w.write_all(head.as_bytes())?;
    w.write_all(body)?;
    w.flush()
}

/// Reads one client-side response: `(status, body)`.
pub fn read_response(r: &mut impl BufRead) -> std::io::Result<(u16, Vec<u8>)> {
    let mut budget = MAX_HEADER_BYTES;
    let status_line = read_line(r, &mut budget)?;
    let status: u16 = status_line
        .split_ascii_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| invalid(format!("malformed status line '{status_line}'")))?;
    let (_, content_length) = read_headers(r, &mut budget)?;
    let body = read_body(r, content_length)?;
    Ok((status, body))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn parses_request_with_query_and_body() {
        let raw = b"POST /solve?algorithm=general&x=1 HTTP/1.1\r\nHost: h\r\nContent-Length: 4\r\n\r\nbodyGET";
        let mut cur = Cursor::new(&raw[..]);
        let req = read_request(&mut cur).unwrap().unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path(), "/solve");
        assert_eq!(req.query_param("algorithm"), Some("general"));
        assert_eq!(req.query_param("x"), Some("1"));
        assert_eq!(req.query_param("missing"), None);
        assert_eq!(req.body, b"body");
        assert!(!req.wants_close());
        assert_eq!(req.header("host"), Some("h"));
    }

    #[test]
    fn eof_between_requests_is_none() {
        let mut cur = Cursor::new(&b""[..]);
        assert!(read_request(&mut cur).unwrap().is_none());
    }

    #[test]
    fn rejects_malformed_and_oversized_input() {
        let mut cur = Cursor::new(&b"NOT-HTTP\r\n\r\n"[..]);
        assert!(read_request(&mut cur).is_err());
        let mut cur = Cursor::new(&b"GET / SPDY/3\r\n\r\n"[..]);
        assert!(read_request(&mut cur).is_err());
        let raw = format!("GET / HTTP/1.1\r\nContent-Length: {}\r\n\r\n", usize::MAX);
        let mut cur = Cursor::new(raw.into_bytes());
        assert!(read_request(&mut cur).is_err());
    }

    #[test]
    fn response_round_trips() {
        let mut wire = Vec::new();
        let n = write_response(&mut wire, 200, "text/plain", b"hello").unwrap();
        assert_eq!(n as usize, wire.len());
        let mut cur = Cursor::new(wire);
        let (status, body) = read_response(&mut cur).unwrap();
        assert_eq!(status, 200);
        assert_eq!(body, b"hello");
    }

    #[test]
    fn request_round_trips() {
        let mut wire = Vec::new();
        write_request(&mut wire, "POST", "/solve", Some(b"{}")).unwrap();
        let mut cur = Cursor::new(wire);
        let req = read_request(&mut cur).unwrap().unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.target, "/solve");
        assert_eq!(req.body, b"{}");
    }
}
