#![warn(missing_docs)]

//! `mc3-server` — the live serving plane for the MC³ solver.
//!
//! Zero external dependencies, like the rest of the workspace: the HTTP
//! layer is a hand-rolled HTTP/1.1 subset over `std::net::TcpListener`
//! ([`http`]), requests run on a fixed [`pool`] of worker threads, and
//! all timing goes through [`mc3_telemetry::monotonic_ns`].
//!
//! * [`server`] — `mc3 serve`: `POST /solve` (dataset JSON in, solve
//!   report + certificate out), `GET /metrics` (live Prometheus
//!   exposition: cumulative solver telemetry from the per-request
//!   [`mc3_telemetry::Aggregator`], plus the request-plane families),
//!   `GET /healthz`, `GET /buildinfo`. Every request gets its own id,
//!   propagated into the JSONL event log, and its own
//!   [`mc3_telemetry::ScopedSession`] span tree. Repeated work is
//!   memoized across requests: a canonical-fingerprint component cache
//!   ([`mc3_solver::SolveCache`]) plus an exact-body response cache,
//!   both sized by [`ServerConfig::cache_mb`] and disabled by
//!   [`ServerConfig::no_cache`].
//! * [`loadgen`] — `mc3 loadgen`: drives a server with a deterministic
//!   [`mc3_workload::RequestMix`], reports per-route p50/p95/p99, and
//!   exits non-zero when the `/solve` p99 SLO is violated (the CI smoke
//!   job's gate).
//!
//! See `docs/serving.md` for the endpoint reference and request
//! lifecycle.

pub mod http;
pub mod loadgen;
pub mod pool;
pub mod server;

pub use loadgen::{run_loadgen, LoadReport, RouteStats};
pub use server::{Server, ServerState};

/// `mc3 serve` parameters.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Listen address, e.g. `127.0.0.1:7920` (`:0` picks a free port).
    pub addr: String,
    /// Worker threads; `0` = one per available core (floor 8, so the
    /// default covers `mc3 loadgen --concurrency 8`).
    pub workers: usize,
    /// Byte budget (MiB) for the cross-request solve cache; the
    /// exact-body request cache gets a quarter of it on top. `0`
    /// disables both, same as `no_cache`.
    pub cache_mb: usize,
    /// Disable the solve and request caches (`--no-cache`): every
    /// request recomputes from scratch.
    pub no_cache: bool,
    /// Worker count for the shared solve executor
    /// ([`mc3_solver::executor`]) all `/solve` and `/solve-batch`
    /// requests run their component solves on; `0` = one per available
    /// core. The pool is process-wide and sized once, at startup.
    pub solve_threads: usize,
}

/// `mc3 loadgen` parameters.
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// Server address to drive.
    pub addr: String,
    /// Run duration in seconds.
    pub duration_secs: u64,
    /// Concurrent client connections.
    pub concurrency: usize,
    /// The workload rotation.
    pub mix: mc3_workload::RequestMix,
    /// p99 latency SLO for `/solve`, milliseconds.
    pub slo_p99_ms: Option<u64>,
    /// Batch mode: `n > 1` posts each mix body as an `n`-item array to
    /// `POST /solve-batch` and accounts per-item latencies; `0` or `1`
    /// drives plain `POST /solve`.
    pub batch: usize,
}

/// Starts a server and blocks forever (the `mc3 serve` entry point);
/// returns only on a fatal accept-loop error.
pub fn serve_forever(cfg: &ServerConfig) -> Result<String, String> {
    Server::start(cfg)?.join()
}
