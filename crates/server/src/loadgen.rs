//! `mc3 loadgen` — a deterministic, SLO-gated load generator for the
//! serving plane.
//!
//! Workers share one atomic request ticket; ticket `i` maps through
//! [`RequestMix::entry_for`] to a pre-serialized `/solve` body (every
//! 16th ticket scrapes `/metrics` instead, so the report covers both
//! routes). Request bodies are generated **once** up front, so the load
//! measured is the server's, not the generator's. The run reports
//! p50/p95/p99 per route and exits non-zero when the `/solve` p99
//! exceeds `--slo p99=...`.
//!
//! With `--batch n` (n > 1) each mix body becomes an `n`-item
//! [`mc3_workload::generate_batch`] array posted to `POST /solve-batch`;
//! the run then accounts **per-item** latencies (an equal share of each
//! request's wire latency) and failures from the response envelope's
//! `count`/`ok` fields, and the SLO gate applies to the per-item
//! `solve-batch` percentiles.
//!
//! The run also scrapes the server's cache counters
//! (`mc3_cache_hits_total`, `mc3_request_cache_hits_total`, …) before
//! and after, and reports the hit ratios the run itself produced — the
//! observable that makes a duplicate-heavy mix worth driving.

use crate::http::{read_response, write_request};
use crate::LoadgenConfig;
use std::collections::BTreeMap;
use std::io::BufReader;
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Every `SCRAPE_EVERY`-th ticket becomes a `/metrics` scrape.
const SCRAPE_EVERY: u64 = 16;

/// One completed request as seen by the client.
#[derive(Debug, Clone, Copy)]
struct Sample {
    route: &'static str,
    latency_ns: u64,
    ok: bool,
}

/// Per-route aggregation of a finished run.
#[derive(Debug, Default, Clone)]
pub struct RouteStats {
    /// Latencies of successful (2xx) requests, nanoseconds, sorted.
    pub latencies_ns: Vec<u64>,
    /// Requests that failed: non-2xx status or transport error.
    pub failures: u64,
}

impl RouteStats {
    /// The `p`-th percentile latency in nanoseconds (nearest-rank on the
    /// sorted successes); `None` with no successes.
    pub fn percentile_ns(&self, p: u64) -> Option<u64> {
        let n = self.latencies_ns.len() as u64;
        if n == 0 {
            return None;
        }
        let rank = ((n - 1) * p + 50) / 100;
        self.latencies_ns.get(rank as usize).copied()
    }
}

/// Outcome of a load run, keyed by route label.
#[derive(Debug, Default, Clone)]
pub struct LoadReport {
    /// Per-route stats.
    pub routes: BTreeMap<&'static str, RouteStats>,
    /// Wall-clock duration of the run, nanoseconds.
    pub wall_ns: u64,
}

impl LoadReport {
    fn total_requests(&self) -> u64 {
        self.routes
            .values()
            .map(|s| s.latencies_ns.len() as u64 + s.failures)
            .sum()
    }

    fn total_failures(&self) -> u64 {
        self.routes.values().map(|s| s.failures).sum()
    }

    /// Renders the human-readable run report.
    pub fn render(&self, concurrency: usize) -> String {
        use std::fmt::Write as _;
        let ms = |ns: Option<u64>| match ns {
            Some(ns) => format!("{:.2}ms", ns as f64 / 1e6),
            None => "n/a".to_owned(),
        };
        let secs = (self.wall_ns as f64 / 1e9).max(1e-9);
        let mut out = String::new();
        let _ = writeln!(
            out,
            "loadgen: {} requests in {secs:.1}s over {concurrency} connections ({:.1} req/s), {} failures",
            self.total_requests(),
            self.total_requests() as f64 / secs,
            self.total_failures(),
        );
        for (route, stats) in &self.routes {
            let _ = writeln!(
                out,
                "  route {route:<9} n={:<6} failures={:<4} p50={} p95={} p99={}",
                stats.latencies_ns.len(),
                stats.failures,
                ms(stats.percentile_ns(50)),
                ms(stats.percentile_ns(95)),
                ms(stats.percentile_ns(99)),
            );
        }
        out
    }
}

/// Pre-serialized request bodies, one per mix entry (same order as
/// [`RequestMix::entries`]). In batch mode each body is an
/// [`mc3_workload::generate_batch`] array targeting `/solve-batch`.
fn prepare_bodies(cfg: &LoadgenConfig) -> Result<Vec<(String, Vec<u8>)>, String> {
    let batch = cfg.batch.max(1);
    cfg.mix
        .entries()
        .iter()
        .map(|entry| {
            let mut body = Vec::new();
            let target = if batch > 1 {
                let items =
                    mc3_workload::generate_batch(entry.kind, entry.queries, entry.seed, batch);
                mc3_workload::write_batch_json(&items, &mut body)
                    .map_err(|e| format!("cannot serialize workload '{}': {e}", entry.spec()))?;
                format!("/solve-batch?algorithm={}", entry.algorithm)
            } else {
                let ds = mc3_workload::generate_dataset(entry.kind, entry.queries, entry.seed);
                mc3_workload::write_dataset_json(&ds, &mut body)
                    .map_err(|e| format!("cannot serialize workload '{}': {e}", entry.spec()))?;
                format!("/solve?algorithm={}", entry.algorithm)
            };
            Ok((target, body))
        })
        .collect()
}

/// Lifts `(count, ok)` from a `/solve-batch` envelope; `None` when the
/// body is not a well-formed envelope.
fn parse_batch_envelope(body: &[u8]) -> Option<(u64, u64)> {
    let doc = mc3_core::json::parse(std::str::from_utf8(body).ok()?).ok()?;
    Some((doc.get("count")?.as_u64()?, doc.get("ok")?.as_u64()?))
}

/// Cache counters lifted from one `/metrics` exposition.
#[derive(Debug, Default, Clone, Copy)]
struct CacheCounters {
    solve_hits: u64,
    solve_misses: u64,
    request_hits: u64,
    request_misses: u64,
}

/// Scrapes `/metrics` once and extracts the cache counter families;
/// `None` when the scrape itself fails (families missing parse as 0 —
/// a `--no-cache` server still renders the registry counters).
fn scrape_cache_counters(addr: &str) -> Option<CacheCounters> {
    let (mut reader, mut writer) = connect(addr).ok()?;
    write_request(&mut writer, "GET", "/metrics", None).ok()?;
    let (status, body) = read_response(&mut reader).ok()?;
    if !(200..300).contains(&status) {
        return None;
    }
    let text = String::from_utf8(body).ok()?;
    let value = |name: &str| -> u64 {
        let needle = format!("{name} ");
        text.lines()
            .find_map(|l| l.strip_prefix(needle.as_str()))
            .and_then(|v| v.trim().parse().ok())
            .unwrap_or(0)
    };
    Some(CacheCounters {
        solve_hits: value("mc3_cache_hits_total"),
        solve_misses: value("mc3_cache_misses_total"),
        request_hits: value("mc3_request_cache_hits_total"),
        request_misses: value("mc3_request_cache_misses_total"),
    })
}

/// `"83.3% (120/144)"`, or `"n/a"` with no lookups.
fn hit_ratio(hits: u64, misses: u64) -> String {
    let total = hits + misses;
    if total == 0 {
        "n/a".to_owned()
    } else {
        format!(
            "{:.1}% ({hits}/{total})",
            100.0 * hits as f64 / total as f64
        )
    }
}

fn connect(addr: &str) -> std::io::Result<(BufReader<TcpStream>, TcpStream)> {
    let stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(30)))?;
    stream.set_nodelay(true)?;
    let writer = stream.try_clone()?;
    Ok((BufReader::new(stream), writer))
}

fn worker_loop(
    cfg: &LoadgenConfig,
    bodies: &[(String, Vec<u8>)],
    ticket: &AtomicU64,
    deadline_ns: u64,
) -> Vec<Sample> {
    let mut samples = Vec::new();
    let mut conn = connect(&cfg.addr).ok();
    while mc3_telemetry::monotonic_ns() < deadline_ns {
        let Some((reader, writer)) = conn.as_mut() else {
            std::thread::sleep(Duration::from_millis(20));
            conn = connect(&cfg.addr).ok();
            continue;
        };
        // audit:allow(no-relaxed-atomics) reviewed: shared ticket counter — entry choice only needs uniqueness, not ordering
        let i = ticket.fetch_add(1, Ordering::Relaxed);
        let solve_route = if cfg.batch > 1 {
            "solve-batch"
        } else {
            "solve"
        };
        let (route, method, target, body) = if i % SCRAPE_EVERY == SCRAPE_EVERY - 1 {
            ("metrics", "GET", "/metrics", None)
        } else {
            let Some(entry) = cfg.mix.entry_for(i) else {
                break;
            };
            let idx = cfg
                .mix
                .entries()
                .iter()
                .position(|e| std::ptr::eq(e, entry))
                .unwrap_or(0);
            match bodies.get(idx) {
                Some((target, body)) => {
                    (solve_route, "POST", target.as_str(), Some(body.as_slice()))
                }
                None => break,
            }
        };
        let start = mc3_telemetry::monotonic_ns();
        let outcome =
            write_request(writer, method, target, body).and_then(|()| read_response(reader));
        let latency_ns = mc3_telemetry::monotonic_ns().saturating_sub(start);
        match outcome {
            Ok((status, body)) => {
                if route == "solve-batch" && (200..300).contains(&status) {
                    // Per-item accounting: the envelope says how many
                    // items succeeded; each is charged an equal share of
                    // the wire latency. A 200 that is not a well-formed
                    // envelope counts as one failed item.
                    let (count, ok) = parse_batch_envelope(&body).unwrap_or((1, 0));
                    let per_item_ns = latency_ns / count.max(1);
                    for item in 0..count.max(1) {
                        samples.push(Sample {
                            route,
                            latency_ns: per_item_ns,
                            ok: item < ok,
                        });
                    }
                } else {
                    samples.push(Sample {
                        route,
                        latency_ns,
                        ok: (200..300).contains(&status),
                    });
                }
            }
            Err(_) => {
                samples.push(Sample {
                    route,
                    latency_ns,
                    ok: false,
                });
                conn = None; // transport error: reconnect on the next tick
            }
        }
    }
    samples
}

/// Runs the load and renders the report; `Err` when the `/solve` p99 SLO
/// is violated (or nothing could be measured), so the CLI exits non-zero
/// and CI fails.
pub fn run_loadgen(cfg: &LoadgenConfig) -> Result<String, String> {
    let bodies = prepare_bodies(cfg)?;
    let ticket = Arc::new(AtomicU64::new(0));
    let cache_before = scrape_cache_counters(&cfg.addr);
    let start_ns = mc3_telemetry::monotonic_ns();
    let deadline_ns = start_ns.saturating_add(cfg.duration_secs.saturating_mul(1_000_000_000));

    let samples: Vec<Sample> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..cfg.concurrency.max(1))
            .map(|_| {
                let ticket = Arc::clone(&ticket);
                let bodies = &bodies;
                scope.spawn(move || worker_loop(cfg, bodies, &ticket, deadline_ns))
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().unwrap_or_default())
            .collect()
    });

    let mut report = LoadReport {
        wall_ns: mc3_telemetry::monotonic_ns().saturating_sub(start_ns),
        ..LoadReport::default()
    };
    for s in samples {
        let stats = report.routes.entry(s.route).or_default();
        if s.ok {
            stats.latencies_ns.push(s.latency_ns);
        } else {
            stats.failures += 1;
        }
    }
    for stats in report.routes.values_mut() {
        stats.latencies_ns.sort_unstable();
    }

    let mut text = report.render(cfg.concurrency.max(1));
    if let (Some(before), Some(after)) = (cache_before, scrape_cache_counters(&cfg.addr)) {
        text.push_str(&format!(
            "  cache solve-components: {} hit  request-bodies: {} hit\n",
            hit_ratio(
                after.solve_hits.saturating_sub(before.solve_hits),
                after.solve_misses.saturating_sub(before.solve_misses),
            ),
            hit_ratio(
                after.request_hits.saturating_sub(before.request_hits),
                after.request_misses.saturating_sub(before.request_misses),
            ),
        ));
    }
    // In batch mode the gate applies to per-item latencies on the
    // solve-batch route — same quantity of work per sample either way.
    let solve_route = if cfg.batch > 1 {
        "solve-batch"
    } else {
        "solve"
    };
    let solve_p99 = report
        .routes
        .get(solve_route)
        .and_then(|s| s.percentile_ns(99));
    match (cfg.slo_p99_ms, solve_p99) {
        (Some(slo_ms), Some(p99_ns)) => {
            let p99_ms = p99_ns as f64 / 1e6;
            if p99_ns > slo_ms.saturating_mul(1_000_000) {
                text.push_str(&format!(
                    "slo: p99({solve_route}) = {p99_ms:.2}ms > {slo_ms}ms\nloadgen: SLO FAIL"
                ));
                return Err(text);
            }
            text.push_str(&format!(
                "slo: p99({solve_route}) = {p99_ms:.2}ms <= {slo_ms}ms\nloadgen: PASS\n"
            ));
        }
        (Some(_), None) => {
            text.push_str(&format!(
                "slo: no successful /{solve_route} samples to measure\nloadgen: SLO FAIL"
            ));
            return Err(text);
        }
        (None, _) => {}
    }
    Ok(text)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_use_nearest_rank() {
        let stats = RouteStats {
            latencies_ns: (1..=100).collect(),
            failures: 0,
        };
        assert_eq!(stats.percentile_ns(50), Some(51)); // rank 50 of 0..=99
        assert_eq!(stats.percentile_ns(99), Some(99));
        assert_eq!(stats.percentile_ns(100), Some(100));
        assert_eq!(RouteStats::default().percentile_ns(99), None);
    }

    #[test]
    fn hit_ratio_formats_and_handles_empty() {
        assert_eq!(hit_ratio(0, 0), "n/a");
        assert_eq!(hit_ratio(3, 1), "75.0% (3/4)");
        assert_eq!(hit_ratio(0, 5), "0.0% (0/5)");
    }

    #[test]
    fn report_renders_routes_and_counts() {
        let mut report = LoadReport::default();
        report.wall_ns = 2_000_000_000;
        let solve = report.routes.entry("solve").or_default();
        solve.latencies_ns = vec![1_000_000, 2_000_000, 3_000_000];
        solve.failures = 1;
        let text = report.render(4);
        assert!(text.contains("4 requests in 2.0s over 4 connections"));
        assert!(text.contains("1 failures"));
        assert!(text.contains("route solve"));
        assert!(text.contains("p50=2.00ms"));
    }
}
