//! End-to-end serving-plane test: boots a real server on a loopback
//! port, exercises every route over real sockets, checks that `/metrics`
//! moves monotonically, and runs the load generator (both passing and
//! SLO-violating) against it.
//!
//! Everything lives in ONE `#[test]` because the server holds the
//! process-exclusive telemetry session for its whole lifetime —
//! concurrent servers in one test binary would serialize on it anyway.

use mc3_server::{LoadgenConfig, Server, ServerConfig};
use std::io::BufReader;
use std::net::TcpStream;

fn request(
    addr: std::net::SocketAddr,
    method: &str,
    target: &str,
    body: Option<&[u8]>,
) -> (u16, String) {
    let stream = TcpStream::connect(addr).expect("connect");
    let mut writer = stream.try_clone().expect("clone");
    let mut reader = BufReader::new(stream);
    mc3_server::http::write_request(&mut writer, method, target, body).expect("write");
    let (status, body) = mc3_server::http::read_response(&mut reader).expect("read");
    (status, String::from_utf8(body).expect("utf8 body"))
}

fn dataset_body(queries: usize, seed: u64) -> Vec<u8> {
    let ds = mc3_workload::generate_dataset(mc3_workload::GeneratorKind::Synthetic, queries, seed);
    let mut body = Vec::new();
    mc3_workload::write_dataset_json(&ds, &mut body).expect("serialize dataset");
    body
}

/// `mc3_requests_total{route="...",status="..."}` value from an
/// exposition body.
fn requests_total(metrics: &str, route: &str, status: &str) -> u64 {
    let needle = format!("mc3_requests_total{{route=\"{route}\",status=\"{status}\"}} ");
    metrics
        .lines()
        .find_map(|l| l.strip_prefix(needle.as_str()))
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| panic!("family {needle} missing from:\n{metrics}"))
}

/// Value of an unlabeled family line (`name value`).
fn family_value(metrics: &str, name: &str) -> u64 {
    let needle = format!("{name} ");
    metrics
        .lines()
        .find_map(|l| l.strip_prefix(needle.as_str()))
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| panic!("family {name} missing from:\n{metrics}"))
}

#[test]
fn serving_plane_end_to_end() {
    let server = Server::start(&ServerConfig {
        addr: "127.0.0.1:0".to_owned(),
        workers: 3,
        cache_mb: 32,
        no_cache: false,
        solve_threads: 0,
    })
    .expect("server start");
    let addr = server.local_addr();

    // --- /healthz and /buildinfo ---
    let (status, body) = request(addr, "GET", "/healthz", None);
    assert_eq!((status, body.as_str()), (200, "ok\n"));
    let (status, body) = request(addr, "GET", "/buildinfo", None);
    assert_eq!(status, 200);
    let info = mc3_core::json::parse(&body).expect("buildinfo json");
    assert_eq!(info.get("name").and_then(|v| v.as_str()), Some("mc3"));
    assert!(info.get("version").and_then(|v| v.as_str()).is_some());
    assert!(info.get("git").and_then(|v| v.as_str()).is_some());

    // --- error paths ---
    let (status, _) = request(addr, "GET", "/nope", None);
    assert_eq!(status, 404);
    let (status, _) = request(addr, "GET", "/solve", None);
    assert_eq!(status, 405);
    let (status, body) = request(addr, "POST", "/solve", Some(b"not json"));
    assert_eq!(status, 400);
    assert!(body.contains("bad dataset"));
    let (status, _) = request(addr, "POST", "/solve?algorithm=wat", Some(b"{}"));
    assert_eq!(status, 400);

    // --- a real solve, with certificate ---
    let body_bytes = dataset_body(50, 7);
    let (status, body) = request(addr, "POST", "/solve?algorithm=general", Some(&body_bytes));
    assert_eq!(status, 200, "solve failed: {body}");
    let doc = mc3_core::json::parse(&body).expect("solve response json");
    assert!(doc.get("request_id").and_then(|v| v.as_str()).is_some());
    assert_eq!(
        doc.get("algorithm").and_then(|v| v.as_str()),
        Some("general")
    );
    assert!(doc.get("cost").and_then(|v| v.as_u64()).unwrap() > 0);
    assert!(doc.get("queries").and_then(|v| v.as_u64()).unwrap() > 0);
    let cert = doc.get("certificate").expect("certificate block");
    assert_eq!(cert.get("valid").and_then(|v| v.as_bool()), Some(true));
    assert!(!doc
        .get("classifiers")
        .and_then(|v| v.as_array())
        .expect("classifier array")
        .is_empty());

    // --- /metrics: families present, counters monotone across requests ---
    let (status, m1) = request(addr, "GET", "/metrics", None);
    assert_eq!(status, 200);
    for family in [
        "# TYPE mc3_requests_total counter",
        "# TYPE mc3_inflight_requests gauge",
        "# TYPE mc3_request_latency_seconds histogram",
        "# TYPE mc3_log_events_dropped_total counter",
        "# TYPE mc3_build_info gauge",
        "# TYPE mc3_span_wall_nanoseconds_total counter",
    ] {
        assert!(m1.contains(family), "missing {family} in:\n{m1}");
    }
    let solves_before = requests_total(&m1, "solve", "2xx");
    assert!(solves_before >= 1);
    // The captured request-scoped span tree reached the aggregator: the
    // solver's root span shows up in the cumulative exposition.
    assert!(
        m1.contains("mc3_span_wall_nanoseconds_total{span=\"solve\"}"),
        "aggregated solve span missing from:\n{m1}"
    );

    let (_, _) = request(addr, "POST", "/solve", Some(&body_bytes));
    let (_, m2) = request(addr, "GET", "/metrics", None);
    assert!(requests_total(&m2, "solve", "2xx") > solves_before);
    assert!(requests_total(&m2, "metrics", "2xx") >= 1);
    assert!(requests_total(&m2, "other", "4xx") >= 1);

    // --- request cache: an identical (body, algorithm) pair replays the
    // response, byte-equal modulo a freshly stamped request_id ---
    let (status, first) = request(addr, "POST", "/solve?algorithm=general", Some(&body_bytes));
    assert_eq!(status, 200);
    let (status, replay) = request(addr, "POST", "/solve?algorithm=general", Some(&body_bytes));
    assert_eq!(status, 200);
    let split_id = |text: &str| {
        let mut doc = mc3_core::json::parse(text).expect("solve response json");
        let mc3_core::json::Json::Object(map) = &mut doc else {
            panic!("solve response is not an object: {text}");
        };
        let id = map
            .remove("request_id")
            .and_then(|v| v.as_str().map(str::to_owned))
            .expect("request_id present");
        (id, doc)
    };
    let (first_id, first_doc) = split_id(&first);
    let (replay_id, replay_doc) = split_id(&replay);
    assert_eq!(first_doc, replay_doc, "replay must match modulo request_id");
    assert_ne!(first_id, replay_id, "every response gets a fresh id");

    // --- solve cache: a textually different but isomorphic body misses
    // the request cache yet answers every component from the shared
    // component cache ---
    let mut padded = body_bytes.clone();
    padded.push(b'\n');
    let (status, _) = request(addr, "POST", "/solve?algorithm=general", Some(&padded));
    assert_eq!(status, 200);
    let (_, m3) = request(addr, "GET", "/metrics", None);
    for family in [
        "# TYPE mc3_cache_resident_bytes gauge",
        "# TYPE mc3_cache_entries gauge",
        "# TYPE mc3_request_cache_entries gauge",
    ] {
        assert!(m3.contains(family), "missing {family} in:\n{m3}");
    }
    assert!(
        family_value(&m3, "mc3_request_cache_hits_total") >= 1,
        "identical replay must hit the request cache:\n{m3}"
    );
    assert!(
        family_value(&m3, "mc3_cache_hits_total") >= 1,
        "isomorphic re-solve must hit the component cache:\n{m3}"
    );
    assert!(family_value(&m3, "mc3_cache_resident_bytes") > 0);

    // --- /solve-batch: one body, many datasets, per-item verified
    // certificates; duplicate items answered from the component cache ---
    let batch_items =
        mc3_workload::generate_batch(mc3_workload::GeneratorKind::DuplicateHeavy, 24, 5, 4);
    let mut batch_body = Vec::new();
    mc3_workload::write_batch_json(&batch_items, &mut batch_body).expect("serialize batch");
    let (_, mb_before) = request(addr, "GET", "/metrics", None);
    let hits_before = family_value(&mb_before, "mc3_cache_hits_total");
    let (status, body) = request(addr, "POST", "/solve-batch", Some(&batch_body));
    assert_eq!(status, 200, "batch failed: {body}");
    let doc = mc3_core::json::parse(&body).expect("batch response json");
    assert!(doc.get("request_id").and_then(|v| v.as_str()).is_some());
    assert_eq!(doc.get("count").and_then(|v| v.as_u64()), Some(4));
    assert_eq!(doc.get("ok").and_then(|v| v.as_u64()), Some(4));
    let item_docs = doc
        .get("items")
        .and_then(|v| v.as_array())
        .expect("items array");
    for item in item_docs {
        assert_eq!(item.get("status").and_then(|v| v.as_u64()), Some(200));
        assert!(item.get("cost").and_then(|v| v.as_u64()).unwrap() > 0);
        let cert = item.get("certificate").expect("per-item certificate");
        assert_eq!(cert.get("valid").and_then(|v| v.as_bool()), Some(true));
    }
    // generate_batch duplicates consecutive seeds, so at least the
    // duplicate items must have answered from the shared component cache.
    let (_, mb_after) = request(addr, "GET", "/metrics", None);
    assert!(
        family_value(&mb_after, "mc3_cache_hits_total") > hits_before,
        "isomorphic batch items must hit the component cache:\n{mb_after}"
    );
    assert!(requests_total(&mb_after, "solve-batch", "2xx") >= 1);
    // Executor families are live: the pool exists, it ran this batch's
    // component tasks, and nothing was dropped.
    assert!(family_value(&mb_after, "mc3_exec_threads") >= 1);
    assert!(family_value(&mb_after, "mc3_exec_tasks_total") >= 1);
    assert_eq!(family_value(&mb_after, "mc3_requests_dropped_total"), 0);

    // --- batch item isolation: a malformed item fails alone ---
    let good = String::from_utf8(dataset_body(30, 9)).expect("utf8 dataset");
    let mixed = format!("[{good}, {{\"nope\": 1}}]");
    let (status, body) = request(addr, "POST", "/solve-batch", Some(mixed.as_bytes()));
    assert_eq!(status, 200, "mixed batch failed: {body}");
    let doc = mc3_core::json::parse(&body).expect("mixed batch json");
    assert_eq!(doc.get("count").and_then(|v| v.as_u64()), Some(2));
    assert_eq!(doc.get("ok").and_then(|v| v.as_u64()), Some(1));
    let item_docs = doc
        .get("items")
        .and_then(|v| v.as_array())
        .expect("items array");
    assert_eq!(
        item_docs[0].get("status").and_then(|v| v.as_u64()),
        Some(200)
    );
    assert_eq!(
        item_docs[1].get("status").and_then(|v| v.as_u64()),
        Some(400)
    );
    assert!(item_docs[1].get("error").and_then(|v| v.as_str()).is_some());

    // --- batch error paths ---
    let (status, _) = request(addr, "POST", "/solve-batch", Some(b"not json"));
    assert_eq!(status, 400);
    let (status, _) = request(addr, "POST", "/solve-batch", Some(b"{}"));
    assert_eq!(status, 400);
    let (status, _) = request(addr, "POST", "/solve-batch", Some(b"[]"));
    assert_eq!(status, 400);
    let (status, _) = request(addr, "GET", "/solve-batch", None);
    assert_eq!(status, 405);

    // --- loadgen against the live server: small mix, no failures ---
    let report = mc3_server::run_loadgen(&LoadgenConfig {
        addr: addr.to_string(),
        duration_secs: 1,
        concurrency: 2,
        mix: mc3_workload::RequestMix::parse("synthetic:40:7:general,synthetic-short:30:3")
            .expect("mix"),
        slo_p99_ms: Some(60_000),
        batch: 1,
    })
    .expect("loadgen run");
    assert!(report.contains("route solve"), "report: {report}");
    assert!(report.contains("loadgen: PASS"), "report: {report}");
    assert!(report.contains(" 0 failures"), "report: {report}");
    assert!(
        report.contains("cache solve-components:"),
        "report: {report}"
    );

    // --- batch-mode loadgen: per-item accounting on /solve-batch ---
    let report = mc3_server::run_loadgen(&LoadgenConfig {
        addr: addr.to_string(),
        duration_secs: 1,
        concurrency: 2,
        mix: mc3_workload::RequestMix::parse("duplicate-heavy:24:5").expect("mix"),
        slo_p99_ms: Some(60_000),
        batch: 4,
    })
    .expect("batch loadgen run");
    assert!(report.contains("route solve-batch"), "report: {report}");
    assert!(report.contains("loadgen: PASS"), "report: {report}");
    assert!(report.contains(" 0 failures"), "report: {report}");

    // --- an impossible SLO must fail the run (non-zero CLI exit) ---
    let err = mc3_server::run_loadgen(&LoadgenConfig {
        addr: addr.to_string(),
        duration_secs: 1,
        concurrency: 1,
        mix: mc3_workload::RequestMix::parse("synthetic:40:7").expect("mix"),
        slo_p99_ms: Some(0),
        batch: 1,
    })
    .expect_err("0ms SLO cannot pass");
    assert!(err.contains("loadgen: SLO FAIL"), "err: {err}");

    server.shutdown().expect("clean shutdown");
}
